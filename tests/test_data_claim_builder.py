"""Tests for claim construction (Definitions 2-3, paper Tables 2-3)."""

import numpy as np
import pytest

from repro.data.claim_builder import ClaimTableBuilder, build_claim_matrix, build_dataset
from repro.data.raw import RawDatabase
from repro.exceptions import EmptyDatasetError


class TestFactTable:
    def test_facts_are_distinct_entity_attribute_pairs(self, paper_claims):
        pairs = {(f.entity, f.attribute) for f in paper_claims.facts}
        assert len(pairs) == paper_claims.num_facts == 5

    def test_fact_ids_are_dense(self, paper_claims):
        assert [f.fact_id for f in paper_claims.facts] == list(range(5))

    def test_fact_table_relational_view(self, paper_builder):
        table = paper_builder.fact_table()
        assert len(table) == 5
        assert set(table.column_names) == {"fact_id", "entity", "attribute"}


class TestClaimGeneration:
    """The three claim-generation rules of Definition 3."""

    def test_total_claim_count_matches_paper_table3(self, paper_claims):
        # Table 3: 4 facts x 3 Harry Potter sources + 1 Hulu claim = 13 claims.
        assert paper_claims.num_claims == 13

    def test_positive_claims_match_raw_assertions(self, paper_claims, paper_raw):
        assert paper_claims.num_positive_claims == len(paper_raw)

    def test_rule1_positive_claim(self, paper_claims):
        # IMDB asserted Rupert Grint: positive claim.
        fact_id = next(
            f.fact_id for f in paper_claims.facts if f.attribute == "Rupert Grint"
        )
        positive = paper_claims.positive_sources_of(fact_id)
        assert paper_claims.source_id("IMDB") in positive

    def test_rule2_negative_claim(self, paper_claims):
        # Netflix asserted Harry Potter (Daniel) but not Emma Watson: negative claim.
        fact_id = next(
            f.fact_id for f in paper_claims.facts if f.attribute == "Emma Watson"
        )
        negative = paper_claims.negative_sources_of(fact_id)
        assert paper_claims.source_id("Netflix") in negative

    def test_rule3_no_claim_for_uninvolved_source(self, paper_claims):
        # Hulu.com asserted nothing about Harry Potter: no claim at all for its facts.
        hulu = paper_claims.source_id("Hulu.com")
        for fact in paper_claims.facts:
            if fact.entity != "Harry Potter":
                continue
            sources, _ = paper_claims.claims_of(fact.fact_id)
            assert hulu not in sources

    def test_one_claim_per_fact_source_pair(self, paper_claims):
        pairs = list(zip(paper_claims.claim_fact.tolist(), paper_claims.claim_source.tolist()))
        assert len(pairs) == len(set(pairs))

    def test_claim_table_relational_view(self, paper_builder):
        table = paper_builder.claim_table()
        assert len(table) == 13
        true_count = sum(1 for row in table if row["observation"])
        assert true_count == 8

    def test_duplicate_triples_do_not_duplicate_claims(self):
        raw = RawDatabase(strict=False)
        raw.extend([("e", "a", "s"), ("e", "a", "s"), ("e", "b", "s2")])
        claims = ClaimTableBuilder(raw).build()
        assert claims.num_claims == 4  # 2 positive + 2 negative

    def test_empty_raw_database_rejected(self):
        with pytest.raises(EmptyDatasetError):
            ClaimTableBuilder(RawDatabase())


class TestBuildHelpers:
    def test_build_claim_matrix_from_tuples(self):
        claims = build_claim_matrix([("e", "a", "s1"), ("e", "b", "s2")])
        assert claims.num_facts == 2
        assert claims.num_claims == 4

    def test_build_claim_matrix_from_raw(self, paper_raw):
        claims = build_claim_matrix(paper_raw)
        assert claims.num_facts == 5

    def test_build_dataset_labels(self, paper_triples):
        dataset = build_dataset(
            paper_triples,
            truth={("Harry Potter", "Johnny Depp"): False, ("Harry Potter", "Emma Watson"): True},
        )
        assert dataset.num_labelled == 2
        values = {dataset.claims.fact(f).attribute: v for f, v in dataset.labels.items()}
        assert values == {"Johnny Depp": False, "Emma Watson": True}

    def test_build_dataset_ignores_unknown_pairs(self, paper_triples):
        dataset = build_dataset(paper_triples, truth={("No Movie", "Nobody"): True})
        assert dataset.num_labelled == 0

    def test_build_dataset_restricts_to_labelled_entities(self, paper_triples):
        dataset = build_dataset(
            paper_triples,
            truth={("Harry Potter", "Johnny Depp"): False, ("Pirates 4", "Johnny Depp"): True},
            labelled_entities=["Pirates 4"],
        )
        assert dataset.num_labelled == 1

    def test_builder_fact_ids_mapping(self, paper_builder):
        paper_builder.build()
        mapping = paper_builder.fact_ids
        assert mapping[("Pirates 4", "Johnny Depp")] == 4

    def test_build_is_idempotent(self, paper_builder):
        first = paper_builder.build()
        second = paper_builder.build()
        assert first.num_claims == second.num_claims
        assert np.array_equal(first.claim_fact, second.claim_fact)

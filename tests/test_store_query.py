"""Unit tests for repro.store.query and repro.store.database."""

import pytest

from repro.exceptions import StoreError, UnknownColumnError
from repro.store import (
    Column,
    Database,
    Schema,
    Table,
    aggregate,
    distinct,
    equi_join,
    group_by,
    order_by,
    project,
    select,
)


@pytest.fixture
def movies_table() -> Table:
    schema = Schema.of([("title", str), ("cast", str), ("source", str)])
    table = Table("movies", schema)
    table.insert_many(
        [
            {"title": "Harry Potter", "cast": "Daniel Radcliffe", "source": "imdb"},
            {"title": "Harry Potter", "cast": "Emma Watson", "source": "imdb"},
            {"title": "Harry Potter", "cast": "Daniel Radcliffe", "source": "netflix"},
            {"title": "Pirates 4", "cast": "Johnny Depp", "source": "hulu"},
        ]
    )
    return table


class TestQueryOperators:
    def test_select(self, movies_table):
        rows = select(movies_table, lambda r: r["source"] == "imdb")
        assert len(rows) == 2

    def test_project(self, movies_table):
        rows = project(movies_table, ["title"])
        assert rows[0] == {"title": "Harry Potter"}

    def test_project_unknown_column(self, movies_table):
        with pytest.raises(UnknownColumnError):
            project(movies_table, ["director"])

    def test_distinct(self, movies_table):
        rows = distinct(movies_table, ["title"])
        assert len(rows) == 2

    def test_distinct_full_rows(self, movies_table):
        rows = distinct(list(movies_table) + [dict(movies_table[0])])
        assert len(rows) == 4

    def test_equi_join(self, movies_table):
        sources = [
            {"source": "imdb", "reliability": "high"},
            {"source": "hulu", "reliability": "medium"},
        ]
        joined = equi_join(movies_table, sources, on=["source"])
        assert len(joined) == 3
        assert all("reliability" in row for row in joined)

    def test_equi_join_renames_collisions(self):
        left = [{"id": 1, "name": "a"}]
        right = [{"id": 1, "name": "b"}]
        joined = equi_join(left, right, on=["id"])
        assert joined[0]["name"] == "a"
        assert joined[0]["name_right"] == "b"

    def test_equi_join_unknown_column(self, movies_table):
        with pytest.raises(UnknownColumnError):
            equi_join(movies_table, [{"x": 1}], on=["source"])

    def test_group_by(self, movies_table):
        groups = group_by(movies_table, ["title"])
        assert len(groups[("Harry Potter",)]) == 3

    def test_aggregate(self, movies_table):
        rows = aggregate(movies_table, ["title"], {"claims": len})
        by_title = {row["title"]: row["claims"] for row in rows}
        assert by_title == {"Harry Potter": 3, "Pirates 4": 1}

    def test_order_by(self, movies_table):
        rows = order_by(movies_table, ["cast"])
        assert rows[0]["cast"] == "Daniel Radcliffe"
        rows_desc = order_by(movies_table, ["cast"], descending=True)
        assert rows_desc[0]["cast"] == "Johnny Depp"

    def test_order_by_unknown_column(self, movies_table):
        with pytest.raises(UnknownColumnError):
            order_by(movies_table, ["year"])


class TestDatabase:
    def test_create_and_fetch_table(self):
        db = Database("test")
        table = db.create_table("t", Schema.of(["a"]))
        assert db.table("t") is table
        assert "t" in db
        assert len(db) == 1

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("t", Schema.of(["a"]))
        with pytest.raises(StoreError):
            db.create_table("t", Schema.of(["a"]))

    def test_replace_table(self):
        db = Database()
        db.create_table("t", Schema.of(["a"]))
        replacement = db.create_table("t", Schema.of(["b"]), replace=True)
        assert db.table("t") is replacement

    def test_unknown_table(self):
        db = Database()
        with pytest.raises(StoreError):
            db.table("missing")

    def test_drop_table(self):
        db = Database()
        db.create_table("t", Schema.of(["a"]))
        db.drop_table("t")
        assert "t" not in db
        db.drop_table("t")  # idempotent

    def test_attach_existing_table(self):
        db = Database()
        table = Table("external", Schema.of(["a"]))
        db.attach(table)
        assert db.table("external") is table
        with pytest.raises(StoreError):
            db.attach(Table("external", Schema.of(["a"])))

    def test_summary(self):
        db = Database()
        t = db.create_table("t", Schema.of([("a", int)]))
        t.insert({"a": 1})
        assert db.summary() == {"t": 1}
        assert db.table_names == ["t"]

"""Cross-layer telemetry integration tests.

Covers the acceptance contracts of the observability pillar:

* an engine fit emits one ``fit`` root span with chunked ``gibbs.iteration``
  children, and ``engine.last_trace`` exposes the sampler diagnostics
  consistent with :meth:`~repro.core.gibbs.GibbsConfig.paper_schedule`;
* a sharded fit exports one merged span tree — plan → per-shard fit (with
  the worker-side Gibbs chunks grafted across process boundaries) → merge —
  with non-overlapping shard timings on the serial backend;
* enabling telemetry never changes scores, on any backend;
* store, serving and artifact operations land spans and process-global
  metric series, and ``GET /metrics`` exposes them next to the per-app
  request series — whose output stays byte-identical to the pre-refactor
  renderer;
* engine-fit span JSONL is byte-stable under an injected fake clock;
* the CLI round-trip: ``integrate --telemetry --trace-out`` then
  ``obs summary`` / ``obs tail``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import cli, obs
from repro.api import ASGIClient, create_app
from repro.api import observability as api_observability
from repro.core.gibbs import GibbsConfig
from repro.engine import TruthEngine
from repro.engine.config import EngineConfig, ExecutionConfig
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import global_registry, reset_global_registry
from repro.obs.render import load_spans
from repro.store import ClaimStore
from repro.types import Triple


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    obs.reset()
    yield
    obs.reset()


class FakeClock:
    """A deterministic counting clock: every read advances by ``step``."""

    def __init__(self, now: float = 0.0, step: float = 0.5):
        self.now = now
        self.step = step

    def __call__(self) -> float:
        current = self.now
        self.now += self.step
        return current


def _triples_for(num_entities: int, good_sources: int = 4) -> list[Triple]:
    triples = []
    for e in range(num_entities):
        for s in range(good_sources):
            triples.append(Triple(f"e{e}", f"true_{e}", f"good{s}"))
        triples.append(Triple(f"e{e}", f"junk_{e}", "spammer"))
    return triples


def _by_name(spans):
    grouped: dict[str, list] = {}
    for span in spans:
        grouped.setdefault(span["name"], []).append(span)
    return grouped


def fetch(app, method, target, **kwargs):
    return asyncio.run(ASGIClient(app).request(method, target, **kwargs))


# ---------------------------------------------------------------------------
# engine fit spans + sampler diagnostics
# ---------------------------------------------------------------------------
class TestEngineFitSpans:
    def test_fit_emits_root_span_with_chunked_gibbs_children(self):
        tracer = obs.configure()
        TruthEngine(method="ltm", iterations=30, seed=7).fit("paper_example")
        spans = _by_name(tracer.collector.spans)
        fit = spans["fit"][0]
        assert fit["parent_id"] is None
        attrs = fit["attributes"]
        assert attrs["method"] == "ltm"
        assert attrs["backend"] == "serial"
        assert attrs["iterations"] == 30
        assert attrs["triples"] > 0 and attrs["facts"] > 0
        assert 0.0 <= attrs["flip_fraction"] <= 1.0
        # 30 sweeps in chunks of 30 // 10 = 3 → exactly 10 chunk spans, all
        # children of the fit root, jointly covering every sweep.
        chunks = spans["gibbs.iteration"]
        assert len(chunks) == 10
        assert all(chunk["parent_id"] == fit["span_id"] for chunk in chunks)
        assert sum(chunk["attributes"]["iterations"] for chunk in chunks) == 30
        for chunk in chunks:
            assert 0.0 <= chunk["attributes"]["flip_fraction"] <= 1.0

    def test_last_trace_matches_paper_schedule(self):
        engine = TruthEngine(method="ltm", iterations=50, seed=3).fit("paper_example")
        trace = engine.last_trace
        schedule = GibbsConfig.paper_schedule(50)
        assert trace is not None
        assert trace.total_iterations == 50
        assert trace.samples_collected == schedule.num_samples
        assert schedule.num_samples == len(range(schedule.burn_in, 50, schedule.thin))

    def test_fit_span_sample_count_matches_paper_schedule(self):
        tracer = obs.configure()
        TruthEngine(method="ltm", iterations=50, seed=3).fit("paper_example")
        fit = _by_name(tracer.collector.spans)["fit"][0]
        assert fit["attributes"]["samples"] == GibbsConfig.paper_schedule(50).num_samples

    def test_non_sampling_method_has_no_trace_or_sampler_attrs(self):
        tracer = obs.configure()
        engine = TruthEngine(method="voting").fit("paper_example")
        assert engine.last_trace is None
        fit = _by_name(tracer.collector.spans)["fit"][0]
        assert "iterations" not in fit["attributes"]
        assert "flip_fraction" not in fit["attributes"]

    def test_engine_telemetry_config_writes_trace_file(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        config = EngineConfig(
            method="ltm",
            params={"iterations": 10, "seed": 7},
            telemetry={"enabled": True, "trace_path": str(path)},
        )
        TruthEngine(config).fit("paper_example")
        obs.shutdown()
        names = {span["name"] for span in load_spans(str(path))}
        assert "fit" in names and "gibbs.iteration" in names

    def test_metrics_recorded_even_without_tracing(self):
        TruthEngine(method="ltm", iterations=10, seed=7).fit("paper_example")
        rendered = global_registry().render()
        assert 'repro_engine_fits_total{method="ltm",mode="batch"} 1' in rendered
        assert 'repro_engine_fit_seconds_count{backend="serial",method="ltm"} 1' in rendered
        assert 'repro_engine_triples_ingested_total{path="fit"}' in rendered
        assert "repro_gibbs_flip_fraction_count 1" in rendered


# ---------------------------------------------------------------------------
# sharded fits: one merged tree across workers
# ---------------------------------------------------------------------------
BACKENDS = ["serial", "threads", "processes"]


class TestShardedSpans:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_merged_span_tree_covers_plan_fit_merge(self, backend):
        tracer = obs.configure()
        engine = TruthEngine(
            method="ltm",
            iterations=10,
            seed=5,
            execution=ExecutionConfig(num_shards=3, backend=backend),
        ).fit(_triples_for(12))
        assert engine.is_fitted
        spans = _by_name(tracer.collector.spans)
        fit = spans["fit"][0]
        assert len(spans["shard.plan"]) == 1
        assert len(spans["shard.fit"]) == 3
        assert len(spans["shard.merge"]) == 1
        # 10 sweeps → chunk size 1 → 10 gibbs chunks per shard.
        assert len(spans["gibbs.iteration"]) == 30
        plan, merge = spans["shard.plan"][0], spans["shard.merge"][0]
        assert plan["parent_id"] == fit["span_id"]
        assert merge["parent_id"] == fit["span_id"]
        assert plan["attributes"]["strategy"] == "eager"
        assert merge["attributes"]["shards"] == 3
        shard_ids = set()
        for shard in spans["shard.fit"]:
            assert shard["parent_id"] == fit["span_id"]
            assert shard["trace_id"] == fit["trace_id"]
            shard_ids.add(shard["span_id"])
            assert shard["attributes"]["triples"] > 0
        assert {chunk["parent_id"] for chunk in spans["gibbs.iteration"]} == shard_ids
        assert len({span["trace_id"] for span in tracer.collector.spans}) == 1

    def test_serial_shard_fits_do_not_overlap(self):
        tracer = obs.configure()
        TruthEngine(
            method="ltm",
            iterations=10,
            seed=5,
            execution=ExecutionConfig(num_shards=4, backend="serial"),
        ).fit(_triples_for(12))
        shards = sorted(_by_name(tracer.collector.spans)["shard.fit"], key=lambda s: s["start"])
        assert len(shards) == 4
        for earlier, later in zip(shards, shards[1:]):
            assert later["start"] >= earlier["end"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_telemetry_never_changes_scores(self, backend):
        def run(telemetry: bool) -> np.ndarray:
            obs.reset()
            if telemetry:
                obs.configure()
            engine = TruthEngine(
                method="ltm",
                iterations=10,
                seed=11,
                execution=ExecutionConfig(num_shards=3, backend=backend),
            ).fit(_triples_for(9))
            return engine.predict_proba()

        np.testing.assert_array_equal(run(telemetry=True), run(telemetry=False))

    def test_shard_fit_metrics_count_shards(self):
        TruthEngine(
            method="ltm",
            iterations=7,
            seed=5,
            execution=ExecutionConfig(num_shards=3, backend="serial"),
        ).fit(_triples_for(9))
        rendered = global_registry().render()
        assert 'repro_parallel_shard_fit_seconds_count{backend="serial"} 3' in rendered


# ---------------------------------------------------------------------------
# store spans + series
# ---------------------------------------------------------------------------
class TestStoreTelemetry:
    TRIPLES = [
        ("e1", "a1", "s1"),
        ("e1", "a2", "s2"),
        ("e2", "a3", "s1"),
        ("e2", "a4", "s3"),
    ]

    def test_append_and_compact_record_spans(self):
        tracer = obs.configure()
        with ClaimStore() as store:
            store.append(self.TRIPLES[:2])
            store.append(self.TRIPLES[2:])
            store.compact(keep_last=1)
        spans = _by_name(tracer.collector.spans)
        appends = spans["store.append"]
        assert [span["attributes"]["rows"] for span in appends] == [2, 2]
        assert appends[0]["attributes"]["generation"] != appends[1]["attributes"]["generation"]
        compact = spans["store.compact"][0]
        assert compact["attributes"]["rows"] == 2  # generation 1 evicted

    def test_store_series_in_global_registry(self):
        with ClaimStore() as store:
            store.append(self.TRIPLES)
            store.compact(keep_last=1)
        rendered = global_registry().render()
        assert 'repro_store_rows_total{op="append"} 4' in rendered
        assert 'repro_store_op_seconds_count{op="append"} 1' in rendered
        assert 'repro_store_op_seconds_count{op="compact"} 1' in rendered


# ---------------------------------------------------------------------------
# serving: artifact spans + service gauges
# ---------------------------------------------------------------------------
class TestServingTelemetry:
    def test_artifact_save_load_and_service_refresh(self, tmp_path):
        from repro.serving import TruthService

        engine = TruthEngine(method="ltm", iterations=10, seed=7).fit("paper_example")
        first = tmp_path / "one"
        second = tmp_path / "two"
        engine.save(first)
        engine.save(second)

        tracer = obs.configure()
        service = TruthService(str(first))
        service.refresh(str(second))
        spans = _by_name(tracer.collector.spans)
        assert len(spans["artifact.load"]) == 2  # construction + refresh
        refresh = spans["service.refresh"][0]
        assert spans["artifact.load"][1]["parent_id"] == refresh["span_id"]
        assert refresh["attributes"]["generation"] == 2
        assert refresh["attributes"]["facts"] == len(engine.fact_scores)
        rendered = global_registry().render()
        assert "repro_serving_snapshot_generation 2" in rendered
        assert "repro_serving_artifact_age_seconds" in rendered

    def test_artifact_save_span(self, tmp_path):
        engine = TruthEngine(method="voting").fit("paper_example")
        tracer = obs.configure()
        engine.save(tmp_path / "artifact")
        save = _by_name(tracer.collector.spans)["artifact.save"][0]
        assert save["attributes"]["artifact"] == "voting"
        assert save["attributes"]["facts"] == len(engine.fact_scores)


# ---------------------------------------------------------------------------
# /metrics: merged exposition + pre-refactor byte identity
# ---------------------------------------------------------------------------
class TestMetricsEndpoint:
    @pytest.fixture()
    def artifact(self):
        return TruthEngine(method="ltm", iterations=10, seed=7).fit("paper_example").to_artifact(
            name="obs-test"
        )

    def test_exposes_engine_series_next_to_request_series(self, artifact):
        # The module-scope fit above already populated the global registry.
        app = create_app(artifact, rate=None)
        fetch(app, "GET", "/healthz")
        text = fetch(app, "GET", "/metrics").body.decode()
        assert 'repro_api_requests_total{method="GET",route="/healthz",status="200"} 1' in text
        assert 'repro_engine_fits_total{method="ltm",mode="batch"} 1' in text
        assert "repro_gibbs_flip_fraction_count 1" in text

    def test_request_series_byte_identical_to_app_registry(self, artifact):
        app = create_app(artifact, rate=None)
        fetch(app, "GET", "/healthz")
        # Engine fits (artifact fixture, service construction) touched the
        # global registry; empty it so only the per-app series remain —
        # the pre-refactor output.
        reset_global_registry()
        # The handler renders before its own request lands in the series, so
        # the body must be byte-identical to a render taken just before it.
        expected = app.metrics.render().encode("utf-8")
        response = fetch(app, "GET", "/metrics")
        assert response.body == expected
        text = response.body.decode()
        assert "repro_engine_fits_total" not in text
        # Pin the exposition shape the pre-refactor renderer produced: the
        # histogram's le label is appended after the sorted route label.
        assert 'repro_api_requests_total{method="GET",route="/healthz",status="200"} 1' in text
        assert 'repro_api_request_seconds_bucket{route="/healthz",le="0.0005"}' in text
        assert 'repro_api_request_seconds_bucket{route="/healthz",le="+Inf"} 1' in text

    def test_observability_module_is_a_re_export(self):
        assert api_observability.Counter is obs_metrics.Counter
        assert api_observability.Gauge is obs_metrics.Gauge
        assert api_observability.Histogram is obs_metrics.Histogram
        assert api_observability.MetricsRegistry is obs_metrics.MetricsRegistry
        assert api_observability.LATENCY_BUCKETS == obs_metrics.LATENCY_BUCKETS
        assert api_observability.__all__ == [
            "new_request_id",
            "RequestLogger",
            "Counter",
            "Gauge",
            "Histogram",
            "MetricsRegistry",
            "LATENCY_BUCKETS",
        ]


# ---------------------------------------------------------------------------
# byte-stable span export under an injected clock
# ---------------------------------------------------------------------------
class TestByteStableExport:
    def test_engine_fit_jsonl_is_byte_identical_across_runs(self, tmp_path):
        def run(path):
            obs.reset()
            obs.configure(trace_path=str(path), clock=FakeClock(step=0.25))
            TruthEngine(method="ltm", iterations=10, seed=7).fit("paper_example")
            obs.shutdown()
            return path.read_bytes()

        first = run(tmp_path / "one.jsonl")
        second = run(tmp_path / "two.jsonl")
        assert first == second
        names = [span["name"] for span in load_spans(str(tmp_path / "one.jsonl"))]
        assert names.count("gibbs.iteration") == 10
        assert names[-1] == "fit"


# ---------------------------------------------------------------------------
# CLI round-trip
# ---------------------------------------------------------------------------
class TestCliTelemetry:
    def test_integrate_trace_out_then_obs_summary_and_tail(self, tmp_path, capsys):
        data = tmp_path / "books.tsv"
        trace = tmp_path / "spans.jsonl"
        assert cli.main(["simulate", "books", str(data), "--entities", "20"]) == 0
        capsys.readouterr()

        code = cli.main(
            [
                "integrate",
                str(data),
                "--iterations",
                "10",
                "--shards",
                "2",
                "--backend",
                "serial",
                "--telemetry",
                "--trace-out",
                str(trace),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Telemetry" in out
        assert "fit (" in out
        assert f"trace written to {trace}" in out

        spans = load_spans(str(trace))
        names = {span["name"] for span in spans}
        assert {"fit", "shard.plan", "shard.fit", "shard.merge", "gibbs.iteration"} <= names

        assert cli.main(["obs", "summary", str(trace)]) == 0
        summary = capsys.readouterr().out
        assert "shard.merge" in summary
        assert f"{len(spans)} spans" in summary

        assert cli.main(["obs", "tail", str(trace), "--last", "3"]) == 0
        tail = capsys.readouterr().out
        assert len(tail.strip().split("\n")) == 3

    def test_obs_summary_rejects_malformed_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert cli.main(["obs", "summary", str(bad)]) == 2
        assert "bad.jsonl:1" in capsys.readouterr().err

    def test_obs_tail_rejects_non_positive_last(self, tmp_path, capsys):
        trace = tmp_path / "spans.jsonl"
        trace.write_text("")
        assert cli.main(["obs", "tail", str(trace), "--last", "0"]) == 2

"""Tests for the Section 7 extensions."""

import numpy as np
import pytest

from repro.data.claim_builder import build_claim_matrix
from repro.exceptions import ConfigurationError, EmptyDatasetError, ModelError
from repro.extensions import (
    AdversarialSourceFilter,
    EntityClusteredLTM,
    GaussianClaim,
    GaussianTruthModel,
    MultiAttributeLTM,
)
from repro.synth.books import BookAuthorConfig, BookAuthorSimulator
from repro.types import Triple


def _claims_with_adversary(num_entities: int = 25):
    """Three honest sources plus one adversary whose data is mostly wrong."""
    triples = []
    for e in range(num_entities):
        for s in range(3):
            triples.append((f"e{e}", f"true_{e}", f"good{s}"))
        triples.append((f"e{e}", f"lie_{e}_1", "adversary"))
        triples.append((f"e{e}", f"lie_{e}_2", "adversary"))
    return build_claim_matrix(triples)


class TestAdversarialSourceFilter:
    def test_removes_adversarial_source(self):
        claims = _claims_with_adversary()
        report = AdversarialSourceFilter(
            specificity_threshold=0.6, precision_threshold=0.6, iterations=40, seed=0
        ).run(claims)
        assert "adversary" in report.removed_sources
        assert report.final_claims is not None
        assert "adversary" not in report.final_claims.source_names
        assert report.rounds >= 2

    def test_keeps_benign_sources(self, small_book_dataset):
        report = AdversarialSourceFilter(iterations=30, seed=0, max_rounds=2).run(
            small_book_dataset.claims
        )
        # The simulated sellers are noisy but not adversarial: nothing removed.
        assert report.removed_sources == []
        assert report.rounds == 1

    def test_respects_min_sources(self):
        claims = _claims_with_adversary(num_entities=10)
        report = AdversarialSourceFilter(
            specificity_threshold=1.0,
            precision_threshold=1.0,
            min_sources=claims.num_sources,
            iterations=20,
            seed=0,
        ).run(claims)
        assert report.removed_sources == []

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            AdversarialSourceFilter(specificity_threshold=1.5)
        with pytest.raises(ConfigurationError):
            AdversarialSourceFilter(max_rounds=0)
        with pytest.raises(ConfigurationError):
            AdversarialSourceFilter(min_sources=0)


class TestGaussianTruthModel:
    def test_recovers_true_values(self):
        rng = np.random.default_rng(0)
        true_values = {f"e{i}": float(i * 10) for i in range(80)}
        sigmas = {"s_03": 0.3, "s_1": 1.0, "s_2": 2.0, "s_5": 5.0, "s_wild": 20.0}
        claims = []
        for entity, value in true_values.items():
            for source, sigma in sigmas.items():
                claims.append(GaussianClaim(entity, value + rng.normal(0, sigma), source))
        result = GaussianTruthModel(iterations=40).fit(claims)
        errors = [abs(result.truth_estimates[e] - v) for e, v in true_values.items()]
        assert np.mean(errors) < 1.0
        ranking = result.source_reliability_ranking()
        assert ranking[0][0] in {"s_03", "s_1"}
        assert ranking[-1][0] == "s_wild"
        assert result.source_variance["s_03"] < result.source_variance["s_wild"]

    def test_extreme_sources_separate(self):
        rng = np.random.default_rng(1)
        claims = []
        for i in range(60):
            claims.append(GaussianClaim(f"e{i}", float(i) + rng.normal(0, 0.2), "tight"))
            claims.append(GaussianClaim(f"e{i}", float(i) + rng.normal(0, 2.0), "mid"))
            claims.append(GaussianClaim(f"e{i}", float(i) + rng.normal(0, 10.0), "loose"))
        result = GaussianTruthModel(iterations=30).fit(claims)
        assert len(result.truth_estimates) == 60
        assert result.source_variance["loose"] > result.source_variance["tight"]

    def test_accepts_tuples(self):
        result = GaussianTruthModel(iterations=5).fit([("e", 1.0, "s"), ("e", 3.0, "t")])
        assert result.truth_estimates["e"] == pytest.approx(2.0, abs=0.5)
        assert result.iterations == 5
        assert result.truth_uncertainty["e"] > 0

    def test_empty_rejected(self):
        with pytest.raises(EmptyDatasetError):
            GaussianTruthModel().fit([])

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            GaussianTruthModel(iterations=0)
        with pytest.raises(ConfigurationError):
            GaussianTruthModel(prior_variance=0)
        with pytest.raises(ConfigurationError):
            GaussianTruthModel(min_variance=0)


class TestMultiAttributeLTM:
    def _two_types(self):
        author_triples, publisher_triples = [], []
        for e in range(20):
            for s in range(3):
                author_triples.append((f"book{e}", f"author_{e}", f"src{s}"))
            author_triples.append((f"book{e}", f"wrong_author_{e}", "src0"))
            for s in range(3):
                publisher_triples.append((f"book{e}", f"publisher_{e}", f"src{s}"))
        return {
            "author": build_claim_matrix(author_triples),
            "publisher": build_claim_matrix(publisher_triples),
        }

    def test_fits_every_type(self):
        results = MultiAttributeLTM(iterations=30, seed=0).fit(self._two_types())
        assert set(results) == {"author", "publisher"}
        for type_result in results.values():
            assert type_result.result.scores.shape[0] > 0
            assert type_result.source_quality is not None
            assert type_result.first_pass_result is not None

    def test_no_sharing_returns_first_pass(self):
        model = MultiAttributeLTM(sharing_weight=0.0, iterations=20, seed=0)
        results = model.fit(self._two_types())
        for type_result in results.values():
            assert type_result.result is type_result.first_pass_result

    def test_global_quality_summary(self):
        model = MultiAttributeLTM(iterations=20, seed=0)
        results = model.fit(self._two_types())
        summary = model.global_source_quality(results)
        assert set(summary) == {"src0", "src1", "src2"}
        for entry in summary.values():
            assert 0.0 <= entry["sensitivity"] <= 1.0
            assert 0.0 <= entry["specificity"] <= 1.0

    def test_empty_input_rejected(self):
        with pytest.raises(EmptyDatasetError):
            MultiAttributeLTM().fit({})

    def test_invalid_sharing_weight(self):
        with pytest.raises(ConfigurationError):
            MultiAttributeLTM(sharing_weight=1.5)


class TestEntityClusteredLTM:
    def test_combined_scores_cover_all_facts(self, small_book_dataset):
        claims = small_book_dataset.claims
        assignment = {entity: f"cluster{i % 2}" for i, entity in enumerate(claims.entities)}
        combined, results = EntityClusteredLTM(assignment, iterations=25, seed=0).fit(claims)
        assert combined.shape == (claims.num_facts,)
        assert set(results) == {"cluster0", "cluster1"}
        covered = sorted(fid for r in results.values() for fid in r.fact_ids)
        assert covered == list(range(claims.num_facts))

    def test_callable_assignment_and_tiny_cluster_merge(self, small_book_dataset):
        claims = small_book_dataset.claims
        lonely_entity = claims.entities[0]

        def assign(entity):
            return "lonely" if entity == lonely_entity else "rest"

        combined, results = EntityClusteredLTM(
            assign, min_cluster_entities=5, iterations=25, seed=0
        ).fit(claims)
        # The single-entity cluster is merged into the catch-all cluster.
        assert "lonely" not in results
        assert combined.shape == (claims.num_facts,)

    def test_quality_divergence(self, small_book_dataset):
        claims = small_book_dataset.claims
        assignment = {entity: f"cluster{i % 2}" for i, entity in enumerate(claims.entities)}
        model = EntityClusteredLTM(assignment, iterations=25, seed=0)
        _, results = model.fit(claims)
        divergence = model.quality_divergence(results)
        assert all(0.0 <= v <= 1.0 for v in divergence.values())

    def test_empty_claims_rejected(self):
        from repro.data.dataset import ClaimMatrix

        empty = ClaimMatrix(facts=[], source_names=["s"], claim_fact=[], claim_source=[], claim_obs=[])
        with pytest.raises(EmptyDatasetError):
            EntityClusteredLTM({}, iterations=5).fit(empty)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            EntityClusteredLTM({}, min_cluster_entities=0)

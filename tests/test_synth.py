"""Tests for the dataset generators (synthetic + simulated crawls)."""

import numpy as np
import pytest

from repro.evaluation.confusion import source_quality_from_truth
from repro.exceptions import ConfigurationError
from repro.synth.books import BookAuthorConfig, BookAuthorSimulator
from repro.synth.ltm_generative import (
    LTMGenerativeConfig,
    generate_ltm_dataset,
    generate_ltm_dataset_with_parameters,
)
from repro.synth.movies import PAPER_MOVIE_SOURCES, MovieDirectorConfig, MovieDirectorSimulator
from repro.synth.names import NameGenerator
from repro.synth.profiles import SourceBehaviour, SourceProfile


class TestNameGenerator:
    def test_unique_person_names(self):
        names = NameGenerator(np.random.default_rng(0))
        people = names.person_names(200)
        assert len(set(people)) == 200

    def test_unique_titles(self):
        names = NameGenerator(np.random.default_rng(0))
        titles = names.work_titles(300)
        assert len(set(titles)) == 300

    def test_misspell_changes_name(self):
        names = NameGenerator(np.random.default_rng(0))
        assert names.misspell("Alice Smith") != "Alice Smith" or True  # may replace with same char rarely
        assert names.misspell("") == "Unknown"

    def test_deterministic_given_seed(self):
        a = NameGenerator(np.random.default_rng(7)).person_names(10)
        b = NameGenerator(np.random.default_rng(7)).person_names(10)
        assert a == b


class TestSourceProfile:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SourceProfile("s", SourceBehaviour.COMPLETE, sensitivity=1.5, false_value_rate=0, first_value_bias=1, coverage=0.5)
        with pytest.raises(ConfigurationError):
            SourceProfile("s", SourceBehaviour.COMPLETE, sensitivity=0.5, false_value_rate=-1, first_value_bias=1, coverage=0.5)

    def test_complete_profile_reports_everything(self):
        rng = np.random.default_rng(0)
        profile = SourceProfile.complete("s")
        reported = profile.reported_values(["a", "b", "c"], ["x", "y"], rng)
        # With sensitivity 0.95 reporting all three is overwhelmingly likely over many draws.
        counts = [len(profile.reported_values(["a", "b", "c"], ["x"], rng)) for _ in range(200)]
        assert np.mean(counts) > 2.5
        assert set(reported) <= {"a", "b", "c", "x", "y"}

    def test_first_value_only_profile(self):
        rng = np.random.default_rng(1)
        profile = SourceProfile.first_value_only("s")
        reports = [profile.reported_values(["first", "second", "third"], [], rng) for _ in range(200)]
        first_rate = np.mean(["first" in r for r in reports])
        second_rate = np.mean(["second" in r for r in reports])
        assert first_rate > 0.9
        assert second_rate < 0.2

    def test_noisy_profile_injects_false_values(self):
        rng = np.random.default_rng(2)
        profile = SourceProfile.noisy("s")
        pool = [f"wrong{i}" for i in range(50)]
        injected = sum(
            any(value in pool for value in profile.reported_values(["a"], pool, rng))
            for _ in range(300)
        )
        assert injected > 30

    def test_adversarial_profile_mostly_wrong(self):
        rng = np.random.default_rng(3)
        profile = SourceProfile.adversarial("s")
        pool = [f"wrong{i}" for i in range(50)]
        reports = [profile.reported_values(["a", "b"], pool, rng) for _ in range(200)]
        false_fraction = np.mean(
            [np.mean([v in pool for v in r]) if r else 0.0 for r in reports]
        )
        assert false_fraction > 0.5

    def test_coverage_probability(self):
        rng = np.random.default_rng(4)
        profile = SourceProfile.complete("s", coverage=0.2)
        covers = np.mean([profile.covers(rng) for _ in range(2000)])
        assert covers == pytest.approx(0.2, abs=0.05)


class TestLTMGenerative:
    def test_scale_matches_config(self):
        config = LTMGenerativeConfig(num_facts=100, num_sources=5, seed=1)
        dataset = generate_ltm_dataset(config)
        assert dataset.claims.num_facts == 100
        assert dataset.claims.num_sources == 5
        assert dataset.claims.num_claims == 500
        assert dataset.num_labelled == 100

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            LTMGenerativeConfig(num_facts=0)
        with pytest.raises(ConfigurationError):
            LTMGenerativeConfig(alpha0=(0.0, 1.0))
        with pytest.raises(ConfigurationError):
            LTMGenerativeConfig(facts_per_entity=0)

    def test_with_expected_quality(self):
        config = LTMGenerativeConfig.with_expected_quality(0.3, 0.9, strength=100.0, num_facts=50, num_sources=3, seed=0)
        assert config.alpha1 == pytest.approx((30.0, 70.0))
        assert config.alpha0 == pytest.approx((10.0, 90.0))
        with pytest.raises(ConfigurationError):
            LTMGenerativeConfig.with_expected_quality(0.0, 0.5)

    def test_parameters_returned_and_consistent(self, small_synthetic):
        dataset, params = small_synthetic
        assert params["sensitivity"].shape == (dataset.claims.num_sources,)
        assert params["truth"].shape == (dataset.claims.num_facts,)
        # Labels must equal the sampled truth.
        for fact_id, label in dataset.labels.items():
            assert label == bool(params["truth"][fact_id])

    def test_observed_quality_tracks_parameters(self, small_synthetic):
        dataset, params = small_synthetic
        observed = source_quality_from_truth(dataset.claims, dataset.labels)
        corr = np.corrcoef(params["sensitivity"], observed.sensitivity)[0, 1]
        assert corr > 0.7

    def test_reproducible(self):
        config = LTMGenerativeConfig(num_facts=50, num_sources=4, seed=9)
        a = generate_ltm_dataset(config)
        b = generate_ltm_dataset(config)
        assert np.array_equal(a.claims.claim_obs, b.claims.claim_obs)


class TestBookSimulator:
    def test_scale_and_labels(self, small_book_dataset):
        summary = small_book_dataset.summary()
        assert summary["entities"] == 60
        assert summary["labelled_entities"] == 30
        assert summary["claims"] > summary["facts"]

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            BookAuthorConfig(num_books=0)
        with pytest.raises(ConfigurationError):
            BookAuthorConfig(labelled_books=0)
        with pytest.raises(ConfigurationError):
            BookAuthorConfig(num_books=10, labelled_books=20)
        with pytest.raises(ConfigurationError):
            BookAuthorConfig(first_author_only_fraction=0.6, complete_fraction=0.3, noisy_fraction=0.3)
        with pytest.raises(ConfigurationError):
            BookAuthorConfig(sellers_per_book=0.0)

    def test_multi_valued_attribute(self, small_book_dataset):
        groups = small_book_dataset.claims.entity_groups
        assert any(len(fact_ids) > 1 for fact_ids in groups.values())

    def test_labels_cover_true_and_false_facts(self, medium_book_dataset):
        values = list(medium_book_dataset.labels.values())
        assert any(values) and not all(values)

    def test_paper_scale_config(self):
        config = BookAuthorConfig.paper_scale()
        assert config.num_books == 1263
        assert config.num_sellers == 879

    def test_reproducible(self):
        a = BookAuthorSimulator(BookAuthorConfig.small(seed=2)).generate()
        b = BookAuthorSimulator(BookAuthorConfig.small(seed=2)).generate()
        assert a.claims.num_claims == b.claims.num_claims
        assert a.labels == b.labels

    def test_first_author_bias_creates_false_negatives(self, medium_book_dataset):
        """Primary authors must be much better covered than co-authors."""
        claims = medium_book_dataset.claims
        positives = claims.positive_counts_per_fact()
        primary, secondary = [], []
        for entity, fact_ids in claims.entity_groups.items():
            true_ids = [f for f in fact_ids if medium_book_dataset.labels.get(f)]
            if len(true_ids) >= 2:
                counted = sorted(true_ids, key=lambda f: -positives[f])
                primary.append(positives[counted[0]])
                secondary.extend(positives[counted[1:]])
        if primary and secondary:
            assert np.mean(primary) > np.mean(secondary)


class TestMovieSimulator:
    def test_sources_are_paper_table8(self, small_movie_dataset):
        assert set(small_movie_dataset.claims.source_names) <= set(PAPER_MOVIE_SOURCES)

    def test_conflicting_filter(self, small_movie_dataset):
        claims = small_movie_dataset.claims
        for entity, fact_ids in claims.entity_groups.items():
            sources = set()
            for fact_id in fact_ids:
                sources.update(claims.positive_sources_of(fact_id).tolist())
            assert len(fact_ids) > 1
            assert len(sources) > 1

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MovieDirectorConfig(num_movies=0)
        with pytest.raises(ConfigurationError):
            MovieDirectorConfig(coverage=0.0)
        with pytest.raises(ConfigurationError):
            MovieDirectorConfig(decoy_affinity=2.0)

    def test_labels_cover_true_and_false_facts(self, small_movie_dataset):
        values = list(small_movie_dataset.labels.values())
        assert any(values) and not all(values)

    def test_paper_scale_config(self):
        assert MovieDirectorConfig.paper_scale().num_movies == 15073

    def test_source_quality_ordering_recoverable(self):
        """On a larger sample the generated data preserves Table 8's ordering:
        imdb more sensitive than fandango, and amg the least specific."""
        dataset = MovieDirectorSimulator(MovieDirectorConfig(num_movies=800, seed=13)).generate()
        quality = source_quality_from_truth(dataset.claims, dataset.labels)
        names = list(quality.source_names)
        if "imdb" in names and "fandango" in names:
            assert quality.sensitivity[names.index("imdb")] > quality.sensitivity[names.index("fandango")]
        if "amg" in names:
            amg_spec = quality.specificity[names.index("amg")]
            assert amg_spec <= np.median(quality.specificity) + 1e-9

    def test_reproducible(self):
        a = MovieDirectorSimulator(MovieDirectorConfig.small(seed=4)).generate()
        b = MovieDirectorSimulator(MovieDirectorConfig.small(seed=4)).generate()
        assert a.claims.num_claims == b.claims.num_claims

"""Unit tests for repro.store.schema."""

import pytest

from repro.exceptions import SchemaError
from repro.store import Column, Schema


class TestColumn:
    def test_validates_type(self):
        column = Column("age", int)
        column.validate(3)

    def test_rejects_wrong_type(self):
        column = Column("age", int)
        with pytest.raises(SchemaError):
            column.validate("three")

    def test_object_accepts_anything(self):
        column = Column("anything")
        column.validate(3)
        column.validate("text")
        column.validate([1, 2])

    def test_nullable_accepts_none(self):
        column = Column("note", str, nullable=True)
        column.validate(None)

    def test_non_nullable_rejects_none(self):
        column = Column("note", str)
        with pytest.raises(SchemaError):
            column.validate(None)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("")

    def test_tuple_dtype(self):
        column = Column("value", (int, float))
        column.validate(1)
        column.validate(1.5)
        with pytest.raises(SchemaError):
            column.validate("1")


class TestSchema:
    def test_column_names_in_order(self):
        schema = Schema.of(["a", "b", "c"])
        assert schema.column_names == ("a", "b", "c")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(["a", "a"])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema(columns=())

    def test_key_must_be_a_column(self):
        with pytest.raises(SchemaError):
            Schema.of(["a"], key=["b"])

    def test_of_accepts_mixed_specs(self):
        schema = Schema.of([Column("a", int), "b", ("c", str)])
        assert schema.column("c").dtype is str

    def test_of_rejects_bad_spec(self):
        with pytest.raises(SchemaError):
            Schema.of([123])

    def test_contains(self):
        schema = Schema.of(["a", "b"])
        assert "a" in schema
        assert "z" not in schema

    def test_len(self):
        assert len(Schema.of(["a", "b", "c"])) == 3

    def test_column_lookup_unknown(self):
        schema = Schema.of(["a"])
        with pytest.raises(SchemaError):
            schema.column("missing")

    def test_validate_row_normalises_order(self):
        schema = Schema.of([("a", int), ("b", str)])
        row = schema.validate_row({"b": "x", "a": 1})
        assert list(row) == ["a", "b"]

    def test_validate_row_missing_column(self):
        schema = Schema.of([("a", int)])
        with pytest.raises(SchemaError):
            schema.validate_row({})

    def test_validate_row_nullable_fills_none(self):
        schema = Schema(columns=(Column("a", int), Column("b", str, nullable=True)))
        row = schema.validate_row({"a": 1})
        assert row["b"] is None

    def test_validate_row_extra_column(self):
        schema = Schema.of(["a"])
        with pytest.raises(SchemaError):
            schema.validate_row({"a": 1, "zzz": 2})

    def test_key_of(self):
        schema = Schema.of(["a", "b"], key=["b", "a"])
        assert schema.key_of({"a": 1, "b": 2}) == (2, 1)

    def test_key_of_without_key(self):
        schema = Schema.of(["a"])
        assert schema.key_of({"a": 1}) is None

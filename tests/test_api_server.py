"""Tests for the bundled stdlib HTTP/1.1 server and the CLI surfaces.

The app itself is covered in ``tests/test_api.py``; here we pin the
*transport* contract: the :class:`~repro.api.APIServer` speaks real HTTP over
a socket, serves byte-identical bodies to the in-process
:class:`~repro.api.ASGIClient` harness, honours keep-alive, and rejects
malformed requests with protocol errors instead of crashing.  The CLI side
pins ``repro-truth query --json`` (shared codec, exit codes 0/1/2) and a
full ``repro-truth serve`` subprocess round-trip with clean SIGINT shutdown.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import ASGIClient, APIServer, canonical_json, create_app, fact_row
from repro.cli import main
from repro.engine import TruthEngine

ENTITY = "Harry Potter"
QUOTED = "Harry%20Potter"


@pytest.fixture(scope="module")
def artifact_path(tmp_path_factory) -> Path:
    engine = TruthEngine(method="ltm", iterations=30, seed=7).fit("paper_example")
    artifact = engine.to_artifact(name="server-test")
    return artifact.save(tmp_path_factory.mktemp("artifact") / "server-test")


def raw_request(
    port: int,
    request: bytes,
    *,
    host: str = "127.0.0.1",
    responses: int = 1,
) -> list[tuple[int, dict[str, str], bytes]]:
    """Send raw bytes to the server, parse ``responses`` HTTP responses back."""

    async def go():
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(request)
        await writer.drain()
        out = []
        for _ in range(responses):
            status_line = await reader.readline()
            if not status_line:
                break
            status = int(status_line.split(b" ")[1])
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = await reader.readexactly(int(headers.get("content-length", "0")))
            out.append((status, headers, body))
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        return out

    return asyncio.run(go())


def with_server(artifact_path, fn, **app_options):
    """Run ``fn(port)`` against a live bundled server (sync callable)."""
    app_options.setdefault("rate", None)

    async def go():
        app = create_app(str(artifact_path), **app_options)
        server = APIServer(app, port=0)
        await server.start()
        try:
            return await asyncio.to_thread(fn, server.port)
        finally:
            await server.close()

    return asyncio.run(go())


def simple_get(port: int, target: str, extra: str = "") -> tuple[int, dict[str, str], bytes]:
    request = f"GET {target} HTTP/1.1\r\nhost: x\r\n{extra}\r\n".encode()
    return raw_request(port, request)[0]


class TestBundledServer:
    def test_serves_all_endpoints(self, artifact_path):
        def check(port):
            results = {}
            for target in (f"/truth/{QUOTED}", "/top-k?k=3", "/healthz", "/metrics"):
                results[target] = simple_get(port, target)
            body = json.dumps({"pairs": [[ENTITY, "Daniel Radcliffe"]]}).encode()
            request = (
                b"POST /batch HTTP/1.1\r\nhost: x\r\ncontent-type: application/json\r\n"
                + b"content-length: " + str(len(body)).encode() + b"\r\n\r\n" + body
            )
            results["/batch"] = raw_request(port, request)[0]
            return results

        results = with_server(artifact_path, check)
        for target, (status, headers, body) in results.items():
            assert status == 200, target
            assert body, target
        assert json.loads(results["/batch"][2])["count"] == 1
        assert b"repro_api_requests_total" in results["/metrics"][2]

    def test_byte_parity_with_asgi_harness(self, artifact_path):
        """The same request yields byte-identical bodies on both transports."""
        targets = [
            f"/truth/{QUOTED}",
            f"/truth/{QUOTED}?attribute=Daniel%20Radcliffe",
            "/top-k?k=4",
            "/truth/Nobody",  # error bodies must match too
            "/healthz",
        ]

        def over_http(port):
            return [simple_get(port, t, "x-request-id: pin\r\n") for t in targets]

        http_responses = with_server(artifact_path, over_http)

        app = create_app(str(artifact_path), rate=None)
        client = ASGIClient(app)
        for target, (status, headers, body) in zip(targets, http_responses):
            local = asyncio.run(client.get(target, headers={"X-Request-Id": "pin"}))
            assert local.status == status, target
            assert local.headers["content-type"] == headers["content-type"], target
            assert local.body == body, target

    def test_keep_alive_reuses_connection(self, artifact_path):
        def check(port):
            request = (
                b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n"
                b"GET /healthz HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n"
            )
            return raw_request(port, request, responses=2)

        first, second = with_server(artifact_path, check)
        assert first[0] == 200 and second[0] == 200
        assert first[1]["connection"] == "keep-alive"
        assert second[1]["connection"] == "close"

    def test_http10_closes_by_default(self, artifact_path):
        def check(port):
            return raw_request(port, b"GET /healthz HTTP/1.0\r\n\r\n")[0]

        status, headers, _ = with_server(artifact_path, check)
        assert status == 200
        assert headers["connection"] == "close"

    def test_malformed_request_line_400(self, artifact_path):
        def check(port):
            return raw_request(port, b"NONSENSE\r\n\r\n")[0]

        status, _, body = with_server(artifact_path, check)
        assert status == 400
        assert json.loads(body)["error"] == "protocol_error"

    def test_unsupported_version_505(self, artifact_path):
        def check(port):
            return raw_request(port, b"GET / HTTP/2.0\r\n\r\n")[0]

        assert with_server(artifact_path, check)[0] == 505

    def test_chunked_body_501(self, artifact_path):
        def check(port):
            request = (
                b"POST /batch HTTP/1.1\r\nhost: x\r\n"
                b"transfer-encoding: chunked\r\n\r\n"
            )
            return raw_request(port, request)[0]

        assert with_server(artifact_path, check)[0] == 501

    def test_bad_content_length_400(self, artifact_path):
        def check(port):
            request = b"POST /batch HTTP/1.1\r\nhost: x\r\ncontent-length: nope\r\n\r\n"
            return raw_request(port, request)[0]

        assert with_server(artifact_path, check)[0] == 400

    def test_rate_limit_over_http(self, artifact_path):
        def check(port):
            return [simple_get(port, "/top-k")[0] for _ in range(4)]

        statuses = with_server(artifact_path, check, rate=0.001, burst=2)
        assert statuses[:2] == [200, 200]
        assert statuses[2] == statuses[3] == 429

    def test_port_zero_binds_ephemeral(self, artifact_path):
        async def go():
            server = APIServer(create_app(str(artifact_path), rate=None), port=0)
            await server.start()
            try:
                return server.port
            finally:
                await server.close()

        assert asyncio.run(go()) > 0


class TestQueryJson:
    """Exit codes pinned: 0 found, 1 no matching fact, 2 bad input."""

    def test_point_lookup_matches_api_codec(self, artifact_path, capsys):
        code = main(
            ["query", str(artifact_path), ENTITY, "--attribute", "Daniel Radcliffe", "--json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        lines = out.strip().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        # Byte-compatible with the API: same codec, same key order.
        assert lines[0] == canonical_json(
            fact_row(ENTITY, "Daniel Radcliffe", payload["score"], threshold=0.5)
        )
        assert payload["accepted"] is True

    def test_entity_listing_one_object_per_line(self, artifact_path, capsys):
        code = main(["query", str(artifact_path), ENTITY, "--json"])
        out = capsys.readouterr().out
        assert code == 0
        rows = [json.loads(line) for line in out.strip().splitlines()]
        assert len(rows) == 4
        assert all(set(row) == {"entity", "attribute", "score", "accepted"} for row in rows)
        scores = [row["score"] for row in rows]
        assert scores == sorted(scores, reverse=True)

    def test_json_suppresses_header_line(self, artifact_path, capsys):
        main(["query", str(artifact_path), ENTITY, "--json"])
        out = capsys.readouterr().out
        assert "artifact" not in out  # no human header in machine mode

    def test_global_top_k_json(self, artifact_path, capsys):
        code = main(["query", str(artifact_path), "--top", "3", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        assert len(out.strip().splitlines()) == 3

    def test_exit_1_when_fact_missing(self, artifact_path, capsys):
        assert main(["query", str(artifact_path), "Nobody", "--json"]) == 1
        assert main(
            ["query", str(artifact_path), ENTITY, "--attribute", "Nobody", "--json"]
        ) == 1
        assert capsys.readouterr().out.strip() == ""

    def test_exit_2_on_bad_input(self, tmp_path, artifact_path, capsys):
        assert main(["query", str(tmp_path / "missing"), ENTITY, "--json"]) == 2
        assert main(["query", str(artifact_path), "--attribute", "x", "--json"]) == 2

    def test_matches_http_truth_endpoint(self, artifact_path, capsys):
        """CLI --json lines equal the fact objects the HTTP endpoint serves."""
        main(["query", str(artifact_path), ENTITY, "--json"])
        cli_rows = capsys.readouterr().out.strip().splitlines()

        app = create_app(str(artifact_path), rate=None)
        response = asyncio.run(ASGIClient(app).get(f"/truth/{QUOTED}"))
        api_rows = [canonical_json(fact) for fact in response.json()["facts"]]
        assert cli_rows == api_rows


class TestServeCommand:
    def test_serve_subprocess_round_trip(self, artifact_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(artifact_path), "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "serving artifact 'server-test'" in banner
            port = int(banner.rstrip().rsplit(":", 1)[1])
            assert "endpoints:" in proc.stdout.readline()

            deadline = time.monotonic() + 10.0
            status, _, body = simple_get(port, "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            status, _, body = simple_get(port, f"/truth/{QUOTED}")
            assert status == 200

            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=max(1.0, deadline - time.monotonic())) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=5)

    def test_serve_exit_2_on_missing_artifact(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nope"), "--port", "0"]) == 2
        assert "error" in capsys.readouterr().err

"""Tests for the integration pipeline, reports and the command-line interface."""

import pytest

from repro.baselines import Voting
from repro.cli import build_parser, main
from repro.core.model import LatentTruthModel
from repro.data.loaders import save_labels_csv, save_triples_csv
from repro.exceptions import ConfigurationError, EmptyDatasetError
from repro.pipeline import format_merged_records, format_quality_report, run_integration
from repro.pipeline.report import format_integration_summary


class TestRunIntegration:
    def test_merges_paper_example(self, paper_triples):
        result = run_integration(
            paper_triples, method=LatentTruthModel(iterations=60, seed=0)
        )
        assert result.claims.num_facts == 5
        assert result.num_accepted() + result.num_rejected() == 5
        harry = result.accepted_values("Harry Potter")
        assert "Daniel Radcliffe" in harry
        assert set(result.fact_scores) == {
            ("Harry Potter", "Daniel Radcliffe"),
            ("Harry Potter", "Emma Watson"),
            ("Harry Potter", "Rupert Grint"),
            ("Harry Potter", "Johnny Depp"),
            ("Pirates 4", "Johnny Depp"),
        }

    def test_voting_integration(self, paper_triples):
        result = run_integration(paper_triples, method=Voting())
        assert result.source_quality is None
        assert result.accepted_values("Pirates 4") == ["Johnny Depp"]

    def test_workspace_tables(self, paper_triples):
        result = run_integration(paper_triples, method=Voting(), keep_workspace=True)
        workspace = result.workspace
        assert workspace is not None
        assert set(workspace.table_names) == {"raw_database", "facts", "claims", "truths"}
        assert len(workspace.table("claims")) == result.claims.num_claims
        assert len(workspace.table("truths")) == result.claims.num_facts

    def test_empty_input_rejected(self):
        with pytest.raises(EmptyDatasetError):
            run_integration([], method=Voting())

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            run_integration([("e", "a", "s")], threshold=1.5)

    def test_high_threshold_rejects_more(self, paper_triples):
        lenient = run_integration(paper_triples, method=Voting(), threshold=0.3)
        strict = run_integration(paper_triples, method=Voting(), threshold=0.9)
        assert strict.num_accepted() <= lenient.num_accepted()


class TestReports:
    def test_quality_report_format(self, paper_claims):
        result = LatentTruthModel(iterations=30, seed=0).fit(paper_claims)
        text = format_quality_report(result.source_quality)
        assert "Sensitivity" in text
        assert "IMDB" in text
        limited = format_quality_report(result.source_quality, top=2)
        assert len(limited.splitlines()) == 3

    def test_merged_records_format(self):
        text = format_merged_records({"b": ["y", "x"], "a": ["z"]}, limit=None)
        lines = text.splitlines()
        assert lines[0] == "a: z"
        assert lines[1] == "b: x, y"

    def test_merged_records_limit(self):
        merged = {f"e{i}": ["v"] for i in range(30)}
        text = format_merged_records(merged, limit=5)
        assert "more entities" in text

    def test_integration_summary(self, paper_triples):
        result = run_integration(paper_triples, method=Voting())
        text = format_integration_summary(result)
        assert "candidate facts:   5" in text
        assert "method:            Voting" in text


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "books", "out.tsv", "--entities", "10"])
        assert args.command == "simulate" and args.kind == "books"
        args = parser.parse_args(["integrate", "in.tsv", "--iterations", "5"])
        assert args.command == "integrate"
        args = parser.parse_args(["compare", "in.tsv", "labels.tsv"])
        assert args.command == "compare"

    def test_simulate_books(self, tmp_path, capsys):
        out = tmp_path / "books.tsv"
        code = main(["simulate", "books", str(out), "--entities", "20", "--seed", "3"])
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_simulate_movies(self, tmp_path, capsys):
        out = tmp_path / "movies.tsv"
        code = main(["simulate", "movies", str(out), "--entities", "60", "--seed", "3"])
        assert code == 0
        assert out.exists()

    def test_integrate_command(self, tmp_path, paper_raw, capsys):
        triples_path = tmp_path / "triples.tsv"
        save_triples_csv(paper_raw, triples_path)
        code = main(["integrate", str(triples_path), "--iterations", "30", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Merged records" in out
        assert "Source quality" in out

    def test_compare_command(self, tmp_path, paper_raw, capsys):
        from tests.conftest import PAPER_EXAMPLE_TRUTH

        triples_path = tmp_path / "triples.tsv"
        labels_path = tmp_path / "labels.tsv"
        save_triples_csv(paper_raw, triples_path)
        save_labels_csv(PAPER_EXAMPLE_TRUTH, labels_path)
        code = main(["compare", str(triples_path), str(labels_path), "--iterations", "20", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "LTM" in out and "Voting" in out

    def test_integrate_command_with_method_flag(self, tmp_path, paper_raw, capsys):
        triples_path = tmp_path / "triples.tsv"
        save_triples_csv(paper_raw, triples_path)
        code = main(["integrate", str(triples_path), "--method", "voting"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Merged records" in out
        # Voting estimates no source quality, so no quality section is printed.
        assert "Source quality" not in out

    def test_integrate_command_unknown_method(self, tmp_path, paper_raw, capsys):
        triples_path = tmp_path / "triples.tsv"
        save_triples_csv(paper_raw, triples_path)
        code = main(["integrate", str(triples_path), "--method", "wat"])
        assert code == 2
        assert "unknown method" in capsys.readouterr().err

    def test_methods_command_lists_registry(self, capsys):
        code = main(["methods"])
        assert code == 0
        out = capsys.readouterr().out
        for key in ("ltm", "voting", "three_estimates", "gaussian_ltm"):
            assert key in out
        assert "incremental" in out and "quality" in out

    def test_compare_command_no_matching_labels(self, tmp_path, paper_raw, capsys):
        triples_path = tmp_path / "triples.tsv"
        labels_path = tmp_path / "labels.tsv"
        save_triples_csv(paper_raw, triples_path)
        save_labels_csv({("Nope", "Nobody"): True}, labels_path)
        code = main(["compare", str(triples_path), str(labels_path)])
        assert code == 2

    def test_datasets_command_lists_catalog(self, capsys):
        code = main(["datasets"])
        assert code == 0
        out = capsys.readouterr().out
        for key in ("paper_example", "books", "movies", "ltm_generative", "adversarial"):
            assert key in out
        assert "aliases" in out

    def test_integrate_with_source_catalog_key(self, capsys):
        code = main(["integrate", "--source", "paper_example", "--method", "voting"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Merged records" in out
        assert "Harry Potter" in out

    def test_integrate_positional_catalog_key(self, capsys):
        code = main(["integrate", "paper_example", "--method", "voting"])
        assert code == 0
        assert "Merged records" in capsys.readouterr().out

    def test_integrate_positional_file_shadows_catalog_key(
        self, tmp_path, paper_raw, capsys, monkeypatch
    ):
        """A local file named like a catalog key still means the file."""
        monkeypatch.chdir(tmp_path)
        save_triples_csv(paper_raw, tmp_path / "books")
        code = main(["integrate", "books", "--method", "voting"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Harry Potter" in out  # the file's data, not the simulated crawl

    def test_integrate_source_file_path(self, tmp_path, paper_raw, capsys):
        triples_path = tmp_path / "triples.tsv"
        save_triples_csv(paper_raw, triples_path)
        code = main(["integrate", "--source", str(triples_path), "--method", "voting"])
        assert code == 0
        assert "Merged records" in capsys.readouterr().out

    def test_integrate_unknown_source(self, capsys):
        code = main(["integrate", "--source", "no_such_dataset", "--method", "voting"])
        assert code == 2
        assert "neither a registered dataset" in capsys.readouterr().err

    def test_integrate_requires_exactly_one_input(self, tmp_path, paper_raw, capsys):
        assert main(["integrate", "--method", "voting"]) == 2
        triples_path = tmp_path / "triples.tsv"
        save_triples_csv(paper_raw, triples_path)
        code = main(
            ["integrate", str(triples_path), "--source", "paper_example", "--method", "voting"]
        )
        assert code == 2
        assert "exactly one" in capsys.readouterr().err


class TestStoreCli:
    """The ``store load | stats | compact`` out-of-core subcommands (ISSUE 7)."""

    def _tsv(self, tmp_path, paper_raw):
        path = tmp_path / "triples.tsv"
        save_triples_csv(paper_raw, path)
        return path

    def test_load_stats_compact_round_trip(self, tmp_path, paper_raw, capsys):
        tsv = self._tsv(tmp_path, paper_raw)
        db = tmp_path / "claims.db"
        assert main(["store", "load", str(tsv), str(db)]) == 0
        assert "loaded 8 triples" in capsys.readouterr().out
        assert main(["store", "stats", str(db)]) == 0
        out = capsys.readouterr().out
        assert "8 triples" in out and "1 generation(s)" in out
        # Second load is a new generation; compact keeps only the newest.
        assert main(["store", "load", str(tsv), str(db)]) == 0
        capsys.readouterr()
        assert main(["store", "compact", str(db), "--keep-last", "1"]) == 0
        assert "evicted 8 triples" in capsys.readouterr().out

    def test_loaded_store_integrates_via_url(self, tmp_path, paper_raw, capsys):
        tsv = self._tsv(tmp_path, paper_raw)
        db = tmp_path / "claims.db"
        assert main(["store", "load", str(tsv), str(db)]) == 0
        capsys.readouterr()
        code = main(
            ["integrate", "--source", f"store://{db}", "--method", "voting",
             "--shards", "2", "--backend", "threads"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 entity shards" in out and "Merged records" in out

    def test_stats_on_missing_store_errors(self, tmp_path, capsys):
        assert main(["store", "stats", str(tmp_path / "absent.db")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_load_missing_input_errors(self, tmp_path, capsys):
        code = main(["store", "load", str(tmp_path / "no.tsv"), str(tmp_path / "c.db")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_compact_requires_criterion(self, tmp_path, paper_raw, capsys):
        tsv = self._tsv(tmp_path, paper_raw)
        db = tmp_path / "claims.db"
        assert main(["store", "load", str(tsv), str(db)]) == 0
        capsys.readouterr()
        assert main(["store", "compact", str(db)]) == 2
        assert "--keep-last" in capsys.readouterr().err

    def test_datasets_table_has_streaming_column(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "streaming" in out.splitlines()[0]

    def test_integrate_on_foreign_sqlite_is_a_clean_error(self, tmp_path, capsys):
        # A sqlite file that is not a claim store must fail with the CLI's
        # friendly error line, not a StoreError traceback.
        import sqlite3

        db = tmp_path / "foreign.db"
        sqlite3.connect(db).execute("CREATE TABLE t (x)").close()
        code = main(["integrate", "--source", f"store://{db}", "--method", "voting"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "not a claim store" in err

    def test_export_on_missing_store_is_a_clean_error(self, tmp_path, capsys):
        code = main(
            ["export", f"store://{tmp_path / 'absent.db'}", str(tmp_path / "art"),
             "--method", "voting"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

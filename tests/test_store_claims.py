"""Tests for the out-of-core claim store (repro.store.backend / .claims).

The contract pinned here (see ISSUE 7):

* the append-only log replays in ingest order and keeps duplicates (the
  claim-matrix builder dedups downstream, so store-backed and in-memory
  corpora build identical matrices);
* entity scans run off the first-seen covering index: ``iter_entities``
  yields insertion order, ``triples_of`` / ``entity_triples`` are range
  reads grouped per entity;
* the schema is versioned and foreign files fail loudly;
* read-only handles (what shard workers open) reject every write;
* windowed retention (``compact``) evicts whole generations / time windows
  and rebuilds the first-seen table from the surviving log.
"""

import sqlite3

import pytest

from repro.exceptions import StoreError
from repro.store import SCHEMA_VERSION, ClaimStore, SQLiteBackend
from repro.types import Triple

TRIPLES = [
    Triple("e1", "a", "s1"),
    Triple("e1", "a", "s2"),
    Triple("e1", "b", "s3"),
    Triple("e2", "c", "s1"),
    Triple("e2", "c", "s3"),
    Triple("e3", "d", "s2"),
]


class TestSQLiteBackend:
    def test_execute_and_iter_rows_chunked(self):
        backend = SQLiteBackend(":memory:")
        backend.execute("CREATE TABLE t (x INTEGER)").close()
        backend.executemany("INSERT INTO t (x) VALUES (?)", [(i,) for i in range(10)])
        backend.commit()
        rows = list(backend.iter_rows("SELECT x FROM t ORDER BY x", chunk_rows=3))
        assert rows == [(i,) for i in range(10)]
        assert backend.fetch_one("SELECT COUNT(*) FROM t") == (10,)
        backend.close()

    def test_transaction_rolls_back_on_error(self):
        backend = SQLiteBackend(":memory:")
        backend.execute("CREATE TABLE t (x INTEGER)").close()
        backend.commit()
        with pytest.raises(RuntimeError):
            with backend.transaction() as txn:
                txn.execute("INSERT INTO t (x) VALUES (1)").close()
                raise RuntimeError("boom")
        assert backend.fetch_one("SELECT COUNT(*) FROM t") == (0,)

    def test_read_only_requires_existing_file(self, tmp_path):
        with pytest.raises(StoreError, match="does not exist"):
            SQLiteBackend(tmp_path / "missing.db", read_only=True)

    def test_read_only_memory_rejected(self):
        with pytest.raises(StoreError):
            SQLiteBackend(":memory:", read_only=True)

    def test_read_only_rejects_writes(self, tmp_path):
        path = tmp_path / "claims.db"
        ClaimStore(path).close()
        backend = SQLiteBackend(path, read_only=True)
        with pytest.raises(StoreError):
            backend.execute("INSERT INTO store_meta (key, value) VALUES ('x', 'y')")
        backend.close()

    def test_closed_backend_raises(self):
        backend = SQLiteBackend(":memory:")
        backend.close()
        backend.close()  # idempotent
        with pytest.raises(StoreError, match="closed"):
            backend.execute("SELECT 1")


class TestClaimStoreIngest:
    def test_append_and_replay_in_order(self):
        with ClaimStore() as store:
            assert store.append(TRIPLES) == len(TRIPLES)
            assert len(store) == len(TRIPLES)
            assert list(store.iter_triples()) == TRIPLES

    def test_accepts_plain_tuples(self):
        with ClaimStore() as store:
            store.append([t.as_tuple() for t in TRIPLES])
            assert list(store.iter_triples()) == TRIPLES

    def test_duplicates_are_kept(self):
        with ClaimStore() as store:
            store.append([TRIPLES[0], TRIPLES[0]])
            assert len(store) == 2

    def test_small_batch_size_flushes_everything(self):
        with ClaimStore() as store:
            assert store.append(iter(TRIPLES), batch_size=2) == len(TRIPLES)
            assert list(store.iter_triples()) == TRIPLES

    def test_invalid_batch_size(self):
        with ClaimStore() as store:
            with pytest.raises(StoreError, match="batch_size"):
                store.append(TRIPLES, batch_size=0)

    def test_each_append_is_one_generation(self):
        with ClaimStore() as store:
            store.append(TRIPLES[:3])
            store.append(TRIPLES[3:])
            assert store.latest_generation() == 2
            gens = store.generations()
            assert [g["generation"] for g in gens] == [1, 2]
            assert [g["rows"] for g in gens] == [3, 3]


class TestClaimStoreScans:
    def test_iter_entities_is_first_seen_order(self):
        with ClaimStore() as store:
            # Insertion order deliberately disagrees with lexical order.
            store.append([("z", "a", "s1"), ("a", "b", "s1"), ("z", "c", "s2")])
            assert list(store.iter_entities()) == ["z", "a"]
            assert store.num_entities() == 2

    def test_triples_of_is_an_entity_range_read(self):
        with ClaimStore() as store:
            store.append(TRIPLES)
            assert store.triples_of("e1") == TRIPLES[:3]
            assert store.triples_of("nope") == []

    def test_entity_triples_groups_in_given_order(self):
        with ClaimStore() as store:
            store.append(TRIPLES)
            got = store.entity_triples(["e2", "e1"])
            assert got == TRIPLES[3:5] + TRIPLES[:3]

    def test_stats_counters(self):
        with ClaimStore() as store:
            store.append(TRIPLES)
            info = store.stats()
            assert info["triples"] == len(TRIPLES)
            assert info["entities"] == 3
            assert info["sources"] == 3
            assert info["generations"] == 1
            assert info["schema_version"] == SCHEMA_VERSION

    def test_chunked_iteration_covers_all_rows(self):
        with ClaimStore() as store:
            store.append(TRIPLES)
            assert list(store.iter_triples(chunk_size=2)) == TRIPLES
            assert list(store.iter_entities(chunk_size=1)) == ["e1", "e2", "e3"]


class TestClaimStorePersistence:
    def test_round_trip_across_reopen(self, tmp_path):
        path = tmp_path / "claims.db"
        with ClaimStore(path) as store:
            store.append(TRIPLES[:3])
        with ClaimStore(path) as store:
            store.append(TRIPLES[3:])
            assert store.latest_generation() == 2
            assert list(store.iter_triples()) == TRIPLES

    def test_read_only_handle_scans_but_never_writes(self, tmp_path):
        path = tmp_path / "claims.db"
        with ClaimStore(path) as store:
            store.append(TRIPLES)
        with ClaimStore(path, read_only=True) as store:
            assert list(store.iter_triples()) == TRIPLES
            with pytest.raises(StoreError, match="read-only"):
                store.append(TRIPLES)
            with pytest.raises(StoreError, match="read-only"):
                store.compact(keep_last=1)

    def test_foreign_sqlite_file_rejected(self, tmp_path):
        path = tmp_path / "other.db"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="not a claim store"):
            ClaimStore(path, read_only=True)

    def test_future_schema_version_rejected(self, tmp_path):
        path = tmp_path / "claims.db"
        ClaimStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE store_meta SET value = '99' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="schema version 99"):
            ClaimStore(path, read_only=True)


class TestClaimStoreCompaction:
    def _loaded(self, path):
        store = ClaimStore(path)
        store.append(TRIPLES[:3])  # generation 1
        store.append(TRIPLES[3:5])  # generation 2
        store.append(TRIPLES[5:])  # generation 3
        return store

    def test_keep_last_evicts_old_generations(self, tmp_path):
        with self._loaded(tmp_path / "claims.db") as store:
            deleted = store.compact(keep_last=1)
            assert deleted == 5
            assert list(store.iter_triples()) == TRIPLES[5:]
            # The first-seen table is rebuilt from the surviving log.
            assert list(store.iter_entities()) == ["e3"]
            # Surviving rows keep their original generation number.
            assert store.latest_generation() == 3

    def test_keep_last_larger_than_history_is_a_no_op(self, tmp_path):
        with self._loaded(tmp_path / "claims.db") as store:
            assert store.compact(keep_last=10) == 0
            assert len(store) == len(TRIPLES)

    def test_older_than_time_window(self, tmp_path):
        with self._loaded(tmp_path / "claims.db") as store:
            # Everything was ingested after epoch 0: nothing to evict.
            assert store.compact(older_than=0.0) == 0
            # Everything is older than a far-future stamp: evict all.
            assert store.compact(older_than=4e12) == len(TRIPLES)
            assert len(store) == 0
            assert list(store.iter_entities()) == []

    def test_compact_requires_a_criterion(self, tmp_path):
        with self._loaded(tmp_path / "claims.db") as store:
            with pytest.raises(StoreError, match="keep_last and/or older_than"):
                store.compact()
            with pytest.raises(StoreError, match="keep_last"):
                store.compact(keep_last=0)

"""Tests for the collapsed Gibbs sampler (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.counts import SourceCounts
from repro.core.gibbs import CollapsedGibbsSampler, GibbsConfig
from repro.core.priors import BetaPrior, LTMPriors
from repro.data.claim_builder import build_claim_matrix
from repro.data.dataset import ClaimMatrix
from repro.data.records import Fact
from repro.exceptions import ConfigurationError, ModelError


class TestGibbsConfig:
    def test_defaults_valid(self):
        config = GibbsConfig()
        assert config.iterations > config.burn_in

    def test_invalid_iterations(self):
        with pytest.raises(ConfigurationError):
            GibbsConfig(iterations=0)

    def test_invalid_burn_in(self):
        with pytest.raises(ConfigurationError):
            GibbsConfig(iterations=10, burn_in=10)
        with pytest.raises(ConfigurationError):
            GibbsConfig(iterations=10, burn_in=-1)

    def test_invalid_thin(self):
        with pytest.raises(ConfigurationError):
            GibbsConfig(iterations=10, burn_in=2, thin=0)

    def test_paper_schedule_known_budgets(self):
        config = GibbsConfig.paper_schedule(100)
        assert (config.iterations, config.burn_in, config.thin) == (100, 20, 5)
        config = GibbsConfig.paper_schedule(7)
        assert (config.iterations, config.burn_in) == (7, 2)

    def test_paper_schedule_fallback(self):
        config = GibbsConfig.paper_schedule(64)
        assert 0 <= config.burn_in < config.iterations
        assert config.thin >= 1

    def test_num_samples(self):
        config = GibbsConfig(iterations=100, burn_in=20, thin=5)
        assert config.num_samples == 16


class TestCollapsedGibbsSampler:
    def test_scores_shape_and_range(self, paper_claims):
        sampler = CollapsedGibbsSampler(config=GibbsConfig(iterations=50, burn_in=10, thin=2, seed=0))
        scores, counts, trace = sampler.run(paper_claims)
        assert scores.shape == (paper_claims.num_facts,)
        assert np.all(scores >= 0.0) and np.all(scores <= 1.0)
        assert trace.samples_collected == GibbsConfig(iterations=50, burn_in=10, thin=2).num_samples
        assert counts.total() == paper_claims.num_claims

    def test_reproducible_with_seed(self, paper_claims):
        config = GibbsConfig(iterations=40, burn_in=10, thin=2, seed=123)
        scores_a, _, _ = CollapsedGibbsSampler(config=config).run(paper_claims)
        scores_b, _, _ = CollapsedGibbsSampler(config=config).run(paper_claims)
        assert np.array_equal(scores_a, scores_b)

    def test_different_seeds_differ(self, small_book_dataset):
        claims = small_book_dataset.claims
        a, _, _ = CollapsedGibbsSampler(
            config=GibbsConfig(iterations=20, burn_in=5, thin=1, seed=1)
        ).run(claims)
        b, _, _ = CollapsedGibbsSampler(
            config=GibbsConfig(iterations=20, burn_in=5, thin=1, seed=2)
        ).run(claims)
        assert not np.array_equal(a, b)

    def test_empty_claims_rejected(self):
        empty = ClaimMatrix(facts=[], source_names=["s"], claim_fact=[], claim_source=[], claim_obs=[])
        with pytest.raises(ModelError):
            CollapsedGibbsSampler().run(empty)

    def test_counts_consistent_with_final_assignment(self, paper_claims):
        sampler = CollapsedGibbsSampler(config=GibbsConfig(iterations=30, burn_in=5, thin=1, seed=7))
        collected = {}

        def callback(iteration, truth):
            collected["truth"] = truth.copy()

        scores, counts, _ = sampler.run(paper_claims, callback=callback)
        rebuilt = SourceCounts.from_assignment(paper_claims, collected["truth"])
        assert np.array_equal(counts.counts, rebuilt.counts)

    def test_initial_truth_respected(self, paper_claims):
        initial = np.ones(paper_claims.num_facts, dtype=np.int64)
        sampler = CollapsedGibbsSampler(config=GibbsConfig(iterations=5, burn_in=1, thin=1, seed=0))
        scores, _, _ = sampler.run(paper_claims, initial_truth=initial)
        assert scores.shape == (paper_claims.num_facts,)

    def test_invalid_initial_truth(self, paper_claims):
        sampler = CollapsedGibbsSampler()
        with pytest.raises(ModelError):
            sampler.run(paper_claims, initial_truth=np.ones(3))
        with pytest.raises(ModelError):
            sampler.run(paper_claims, initial_truth=np.full(paper_claims.num_facts, 2))

    def test_checkpoints_recorded(self, paper_claims):
        sampler = CollapsedGibbsSampler(config=GibbsConfig(iterations=30, burn_in=5, thin=1, seed=0))
        _, _, trace = sampler.run(paper_claims, checkpoints=[10, 20])
        assert set(trace.checkpoint_scores) == {10, 20}
        for snapshot in trace.checkpoint_scores.values():
            assert snapshot.shape == (paper_claims.num_facts,)

    def test_fact_without_claims_follows_prior(self):
        # One fact has no claims at all; its score should hover around the
        # truth prior mean rather than collapsing to 0 or 1.
        facts = [Fact(0, "e1", "a"), Fact(1, "e2", "b")]
        matrix = ClaimMatrix(
            facts=facts,
            source_names=["s"],
            claim_fact=[0],
            claim_source=[0],
            claim_obs=[True],
        )
        priors = LTMPriors(truth=BetaPrior(5.0, 5.0))
        sampler = CollapsedGibbsSampler(
            priors=priors, config=GibbsConfig(iterations=400, burn_in=50, thin=1, seed=3)
        )
        scores, _, _ = sampler.run(matrix)
        assert 0.2 < scores[1] < 0.8

    def test_flip_counts_recorded(self, paper_claims):
        sampler = CollapsedGibbsSampler(config=GibbsConfig(iterations=25, burn_in=5, thin=1, seed=0))
        _, _, trace = sampler.run(paper_claims)
        assert trace.total_iterations == 25
        assert all(0 <= flips <= paper_claims.num_facts for flips in trace.flips_per_iteration)
        fractions = trace.flip_fraction(paper_claims.num_facts)
        assert len(fractions) == 25

    def test_strong_consensus_is_recovered(self):
        # Five reliable sources agree on one value per entity and all deny a
        # sixth source's spurious value: the spurious facts should score low.
        triples = []
        for e in range(20):
            for s in range(5):
                triples.append((f"e{e}", f"true_{e}", f"good{s}"))
            triples.append((f"e{e}", f"junk_{e}", "spammer"))
        claims = build_claim_matrix(triples)
        sampler = CollapsedGibbsSampler(
            priors=LTMPriors.adaptive(claims),
            config=GibbsConfig(iterations=100, burn_in=20, thin=2, seed=0),
        )
        scores, _, _ = sampler.run(claims)
        true_ids = [f.fact_id for f in claims.facts if str(f.attribute).startswith("true_")]
        junk_ids = [f.fact_id for f in claims.facts if str(f.attribute).startswith("junk_")]
        assert scores[true_ids].mean() > 0.9
        assert scores[junk_ids].mean() < 0.5

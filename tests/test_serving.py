"""Tests of the serving subsystem: TruthArtifact, TruthService and the CLI.

Covers the acceptance contracts of the serving pillar:

* save → load → ``predict_proba`` score-identity across every catalog
  dataset and across representative methods;
* byte-identical artifact payloads for two fits with the same seed;
* version-mismatch warning and schema-migration hooks on load;
* cold-start scoring of claims from sources unseen at fit time;
* atomic ``refresh`` snapshot swaps under interleaved / concurrent queries;
* step-artifact emission from ``partial_fit`` / ``export_dir``;
* the ``repro-truth export`` / ``query`` CLI surface.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import cli
from repro.core.priors import LTMPriors
from repro.engine import EngineConfig, TruthEngine
from repro.exceptions import (
    ArtifactError,
    ArtifactVersionWarning,
    ConfigurationError,
    NotFittedError,
)
from repro.io import as_source, default_catalog
from repro.serving import SCHEMA_VERSION, TruthArtifact, TruthService, load_artifact, serve
from repro.serving import artifact as artifact_module


#: Small overrides per catalog key so full-size simulators stay test-sized.
CATALOG_OVERRIDES: dict[str, dict] = {
    "paper_example": {},
    "books": {"num_books": 30, "labelled_books": 10},
    "books_small": {},
    "movies": {"num_movies": 40, "labelled_movies": 10},
    "movies_small": {},
    "ltm_generative": {"num_facts": 60, "num_sources": 6},
    "adversarial": {"num_movies": 40, "labelled_movies": 10},
}


def _source_for(key: str):
    return as_source(key, **CATALOG_OVERRIDES.get(key, {}))


def _fitted_engine(key: str, method: str) -> TruthEngine:
    source = _source_for(key)
    if method == "ltm_inc":
        # LTMinc needs previously learned quality; learn it with a short LTM run.
        quality = (
            TruthEngine(method="ltm", iterations=5, seed=13).fit(source).quality_report()
        )
        return TruthEngine(method="ltm_inc", source_quality=quality).fit(source)
    params = {"iterations": 5, "seed": 13} if method == "ltm" else {}
    return TruthEngine(method=method, **params).fit(source)


# ---------------------------------------------------------------------------
# Round trip: save -> load -> predict_proba score-identity
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("key", sorted(CATALOG_OVERRIDES))
@pytest.mark.parametrize("method", ["ltm", "ltm_inc", "voting", "truthfinder"])
def test_round_trip_score_identity(tmp_path, key, method):
    engine = _fitted_engine(key, method)
    path = engine.save(tmp_path / "artifact")

    loaded = TruthEngine.load(path)
    np.testing.assert_array_equal(loaded.predict_proba(), engine.predict_proba())
    assert loaded.fact_scores == engine.fact_scores
    assert loaded.is_fitted
    assert loaded.config.method == engine.config.method

    if engine.source_quality is not None:
        assert loaded.source_quality is not None
        assert loaded.source_quality.source_names == engine.source_quality.source_names
        np.testing.assert_array_equal(
            loaded.source_quality.sensitivity, engine.source_quality.sensitivity
        )
        np.testing.assert_array_equal(
            loaded.source_quality.specificity, engine.source_quality.specificity
        )
        # Serving-style prediction on fresh triples is identical too.
        new = [("round-trip-entity", "v1", "round-trip-source")]
        np.testing.assert_array_equal(
            loaded.predict_proba(new), engine.predict_proba(new)
        )


def test_round_trip_preserves_config_and_metadata(tmp_path):
    config = EngineConfig(
        method="ltm",
        params={"iterations": 5, "seed": 21, "priors": LTMPriors.paper_book_defaults()},
        threshold=0.6,
        retrain_every=3,
        cumulative=False,
    )
    engine = TruthEngine(config).fit("paper_example")
    artifact = engine.to_artifact(name="paper-v1", extras={"note": "round-trip"})
    path = artifact.save(tmp_path / "artifact")

    restored = load_artifact(path)
    assert restored.name == "paper-v1"
    assert restored.extras == {"note": "round-trip", "steps_integrated": 0}
    assert restored.schema_version == SCHEMA_VERSION
    assert restored.seed == 21
    assert restored.config.threshold == 0.6
    assert restored.config.retrain_every == 3
    assert restored.config.cumulative is False
    priors = restored.config.params["priors"]
    assert isinstance(priors, LTMPriors)
    assert priors.false_positive.positive == 10.0
    assert priors.false_positive.negative == 1000.0

    # Non-serialisable extras fail as ArtifactError, like config params do.
    with pytest.raises(ArtifactError, match="serialisable"):
        engine.to_artifact(extras={"when": object()}).manifest()


def test_to_artifact_before_fit_raises():
    with pytest.raises(NotFittedError):
        TruthEngine(method="voting").to_artifact()


# ---------------------------------------------------------------------------
# Determinism: same seed, byte-identical payload
# ---------------------------------------------------------------------------
def test_same_seed_fits_are_byte_identical(tmp_path):
    def payload():
        engine = TruthEngine(method="ltm", iterations=20, seed=99).fit(
            _source_for("books_small")
        )
        return engine.to_artifact(name="determinism").payload()

    first, second = payload(), payload()
    assert first.keys() == second.keys()
    for name in first:
        assert first[name] == second[name], f"{name} differs between identical fits"

    # The on-disk files are byte-identical as well.
    engine = TruthEngine(method="ltm", iterations=20, seed=99).fit(
        _source_for("books_small")
    )
    path = engine.to_artifact(name="determinism").save(tmp_path / "a")
    for name, data in first.items():
        assert (path / name).read_bytes() == data


def test_artifact_records_seed_and_version(tmp_path):
    import repro

    engine = TruthEngine(method="ltm", iterations=5, seed=4).fit("paper_example")
    path = engine.save(tmp_path / "artifact")
    manifest = json.loads((path / "manifest.json").read_text(encoding="utf-8"))
    assert manifest["seed"] == 4
    assert manifest["repro_version"] == repro.__version__
    assert manifest["schema_version"] == SCHEMA_VERSION


# ---------------------------------------------------------------------------
# Version mismatch and schema migrations
# ---------------------------------------------------------------------------
def test_load_warns_on_version_mismatch(tmp_path):
    engine = TruthEngine(method="voting").fit("paper_example")
    path = engine.save(tmp_path / "artifact")
    manifest_path = path / "manifest.json"
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    manifest["repro_version"] = "0.0.1"
    manifest_path.write_text(json.dumps(manifest), encoding="utf-8")

    with pytest.warns(ArtifactVersionWarning, match="0.0.1"):
        restored = TruthArtifact.load(path)
    assert restored.num_facts == engine.to_artifact().num_facts


def test_unmigratable_old_schema_fails_pointedly(tmp_path):
    engine = TruthEngine(method="voting").fit("paper_example")
    path = engine.save(tmp_path / "artifact")
    manifest_path = path / "manifest.json"
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    manifest["schema_version"] = 0
    manifest_path.write_text(json.dumps(manifest), encoding="utf-8")

    with pytest.raises(ArtifactError, match="no migration"):
        TruthArtifact.load(path)


def test_migration_hook_upgrades_old_artifacts(tmp_path):
    engine = TruthEngine(method="voting").fit("paper_example")
    path = engine.save(tmp_path / "artifact")
    manifest_path = path / "manifest.json"
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    manifest["schema_version"] = 0
    manifest.pop("name")  # pretend v0 manifests had no name field
    manifest_path.write_text(json.dumps(manifest), encoding="utf-8")

    def upgrade_v0(data: dict) -> dict:
        data["schema_version"] = 1
        data.setdefault("name", "migrated-v0")
        return data

    artifact_module.register_migration(0, upgrade_v0)
    try:
        restored = TruthArtifact.load(path)
    finally:
        artifact_module._MIGRATIONS.pop(0, None)
    assert restored.name == "migrated-v0"
    assert restored.num_facts == 5

    # Registering forwards or twice is rejected.
    with pytest.raises(ArtifactError):
        artifact_module.register_migration(SCHEMA_VERSION, upgrade_v0)


def test_load_rejects_non_artifacts(tmp_path):
    with pytest.raises(ArtifactError, match="manifest"):
        TruthArtifact.load(tmp_path)
    (tmp_path / "manifest.json").write_text("not json", encoding="utf-8")
    with pytest.raises(ArtifactError, match="JSON"):
        TruthArtifact.load(tmp_path)


def test_load_wraps_corruption_in_artifact_error(tmp_path, capsys):
    """Corrupt payloads surface as ArtifactError (the CLI's error contract)."""
    engine = TruthEngine(method="ltm", iterations=5, seed=1).fit("paper_example")
    path = engine.save(tmp_path / "artifact")

    arrays = (path / "arrays.npz").read_bytes()
    (path / "arrays.npz").write_bytes(arrays[: len(arrays) // 2])
    with pytest.raises(ArtifactError, match="corrupt|does not match"):
        TruthArtifact.load(path)
    assert cli.main(["query", str(path), "Harry Potter"]) == 2
    assert "error" in capsys.readouterr().err
    (path / "arrays.npz").write_bytes(arrays)

    manifest_path = path / "manifest.json"
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    manifest["config"]["threshold"] = 2.0  # invalid EngineConfig
    manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(ArtifactError, match="invalid engine config"):
        TruthArtifact.load(path)

    manifest["config"]["threshold"] = 0.5
    manifest["config"]["params"] = {"priors": {"__type__": "BetaPrior"}}  # malformed
    manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(ArtifactError, match="invalid engine config"):
        TruthArtifact.load(path)


def test_save_to_unwritable_target_raises_artifact_error(tmp_path, capsys):
    engine = TruthEngine(method="voting").fit("paper_example")
    blocker = tmp_path / "occupied"
    blocker.write_text("a regular file", encoding="utf-8")
    with pytest.raises(ArtifactError, match="cannot write"):
        engine.save(blocker)
    # The CLI keeps its error contract: message + exit 2, no traceback.
    assert cli.main(["export", "paper_example", str(blocker), "--method", "voting"]) == 2
    assert "error" in capsys.readouterr().err


def test_load_rejects_array_paths_outside_the_artifact(tmp_path):
    engine = TruthEngine(method="voting").fit("paper_example")
    path = engine.save(tmp_path / "artifact")
    outside = tmp_path / "outside.npz"
    outside.write_bytes((path / "arrays.npz").read_bytes())
    manifest_path = path / "manifest.json"
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    for escape in ("../outside.npz", str(outside)):
        manifest["arrays"] = escape
        manifest.pop("arrays_sha256", None)
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ArtifactError, match="outside"):
            TruthArtifact.load(path)


def test_save_overwrite_commits_via_the_manifest(tmp_path):
    """In-place overwrite publishes through the manifest, replaced last.

    The only torn window an overwriting ``save()`` can expose is "new
    arrays, old manifest"; that combination must fail as ``ArtifactError``
    (not a raw ``KeyError``), and the completed overwrite must load cleanly.
    """
    quality_engine = TruthEngine(method="ltm", iterations=5, seed=1).fit("paper_example")
    path = quality_engine.save(tmp_path / "artifact")

    plain = TruthEngine(method="voting").fit("paper_example").to_artifact()
    (path / "arrays.npz").write_bytes(plain.payload()["arrays.npz"])
    with pytest.raises(ArtifactError, match="mid-overwrite"):
        TruthArtifact.load(path)  # old has_quality manifest, quality-less arrays

    plain.save(path)  # the overwrite completes: manifest flips last
    assert TruthArtifact.load(path).quality is None


# ---------------------------------------------------------------------------
# Cold start: claims from sources unseen at fit time
# ---------------------------------------------------------------------------
def test_predict_proba_mixed_seen_and_unseen_sources(paper_triples):
    engine = TruthEngine(method="ltm", iterations=20, seed=7).fit(paper_triples)
    mixed = [
        ("Harry Potter", "Daniel Radcliffe", "IMDB"),  # seen source
        ("Harry Potter", "Daniel Radcliffe", "totally-new-wiki"),  # unseen
        ("New Film", "New Director", "another-new-feed"),  # unseen only
    ]
    scores = engine.predict_proba(mixed)
    assert scores.shape == (2,)  # two facts
    assert np.all((scores >= 0.0) & (scores <= 1.0))
    assert np.all(np.isfinite(scores))

    # The fallback quality is the prior mean, not the historical 0.5 / 0.99
    # constants: scoring through an explicitly prior-mean-quality predictor
    # must give identical numbers.
    from repro.core.incremental import IncrementalLTM
    from repro.data.claim_builder import build_claim_matrix

    priors = LTMPriors()
    predictor = IncrementalLTM(
        engine.quality_report(),
        truth_prior=(priors.truth.positive, priors.truth.negative),
        default_sensitivity=priors.sensitivity.mean,
        default_specificity=1.0 - priors.false_positive.mean,
    )
    expected = predictor.fit(build_claim_matrix(mixed, strict=False)).scores
    np.testing.assert_array_equal(scores, expected)


def test_service_score_matches_engine_cold_start(tmp_path, paper_triples):
    engine = TruthEngine(method="ltm", iterations=20, seed=7).fit(paper_triples)
    service = TruthService(engine.save(tmp_path / "artifact"))
    mixed = [
        ("Harry Potter", "Emma Watson", "Netflix"),
        ("Harry Potter", "Emma Watson", "unseen-source"),
        ("Fresh Entity", "Fresh Value", "unseen-source"),
    ]
    np.testing.assert_allclose(service.score(mixed), engine.predict_proba(mixed))
    by_fact = service.score_facts(mixed)
    assert set(by_fact) == {
        ("Harry Potter", "Emma Watson"),
        ("Fresh Entity", "Fresh Value"),
    }


def test_partial_fit_accepts_unseen_sources_after_load(tmp_path):
    engine = TruthEngine(method="ltm", iterations=10, seed=3).fit("paper_example")
    loaded = TruthEngine.load(engine.save(tmp_path / "artifact"))
    loaded.partial_fit([("Pirates 5", "Johnny Depp", "never-seen-before")])
    assert ("Pirates 5", "Johnny Depp") in loaded.fact_scores


def test_score_without_quality_raises_pointedly(tmp_path):
    engine = TruthEngine(method="voting").fit("paper_example")
    service = TruthService(engine.save(tmp_path / "artifact"))
    with pytest.raises(NotFittedError, match="quality"):
        service.score([("a", "b", "c")])


# ---------------------------------------------------------------------------
# TruthService queries
# ---------------------------------------------------------------------------
@pytest.fixture()
def paper_service(tmp_path):
    engine = TruthEngine(method="voting", threshold=0.5).fit("paper_example")
    return TruthService(engine.save(tmp_path / "artifact")), engine


def test_point_and_batch_lookups(paper_service):
    service, engine = paper_service
    for (entity, attribute), score in engine.fact_scores.items():
        assert service.truth_of(entity, attribute) == pytest.approx(score)
        assert (entity, attribute) in service

    assert service.truth_of("nope", "nothing", default=0.25) == 0.25
    with pytest.raises(KeyError):
        service.truth_of("nope", "nothing")
    assert ("nope", "nothing") not in service
    assert "not-a-pair" not in service

    pairs = [("Harry Potter", "Johnny Depp"), ("missing", "missing")]
    batch = service.batch(pairs)
    assert batch[0] == pytest.approx(1 / 3)
    assert np.isnan(batch[1])
    assert service.batch(pairs, default=-1.0)[1] == -1.0


def test_top_k_and_lookup_and_merged_records(paper_service):
    service, engine = paper_service
    ranked = service.lookup("Harry Potter")
    assert [a for a, _ in ranked[:3]] == sorted(
        [a for a, _ in ranked[:3]],
        key=lambda a: -service.truth_of("Harry Potter", a),
    )
    scores = [s for _, s in ranked]
    assert scores == sorted(scores, reverse=True)

    top_entity = service.top_k(2, entity="Harry Potter")
    assert all(e == "Harry Potter" for e, _, _ in top_entity)
    assert len(top_entity) == 2

    top_global = service.top_k(3)
    assert len(top_global) == 3
    assert [s for _, _, s in top_global] == sorted(
        (s for _, _, s in top_global), reverse=True
    )
    assert service.top_k(0) == []
    assert len(service.top_k(100)) == len(service)

    assert service.merged_records() == engine.merged_records()
    assert service.merged_records(threshold=0.0) == engine.merged_records(threshold=0.0)

    # The per-entity cache registers hits on repeat queries.
    service.lookup("Harry Potter")
    assert service.stats()["cache"]["hits"] >= 1


def test_entities_and_len(paper_service):
    service, engine = paper_service
    assert set(service.entities()) == {"Harry Potter", "Pirates 4"}
    assert len(service) == len(engine.fact_scores)


def test_service_requires_artifact(tmp_path):
    with pytest.raises(ArtifactError):
        TruthService(object())  # type: ignore[arg-type]
    with pytest.raises(ArtifactError):
        TruthService(tmp_path / "does-not-exist")


# ---------------------------------------------------------------------------
# refresh(): atomic snapshot swap
# ---------------------------------------------------------------------------
def test_refresh_swaps_snapshots_under_interleaved_queries(tmp_path):
    streamed = [
        ("Pirates 5", "Johnny Depp", "IMDB"),
        ("Pirates 5", "Johnny Depp", "Netflix"),
    ]
    engine = TruthEngine(method="ltm", iterations=10, seed=5, retrain_every=0).fit(
        "paper_example"
    )
    first = engine.save(tmp_path / "v1")
    service = TruthService(first)
    assert ("Pirates 5", "Johnny Depp") not in service

    before = service.truth_of("Harry Potter", "Daniel Radcliffe")
    engine.partial_fit(streamed)
    second = engine.save(tmp_path / "v2")

    # Interleaved queries: still the old snapshot until refresh returns.
    assert ("Pirates 5", "Johnny Depp") not in service
    service.refresh(second)
    assert service.truth_of("Pirates 5", "Johnny Depp") > 0.5
    assert service.truth_of("Harry Potter", "Daniel Radcliffe") == pytest.approx(before)
    assert len(service) == len(engine.fact_scores)


def test_refresh_is_atomic_under_concurrent_readers(tmp_path):
    """Readers racing refresh() must always see one complete snapshot."""
    base = TruthEngine(method="voting").fit("paper_example")
    v1 = base.to_artifact(name="v1")
    shifted = TruthArtifact(
        config=v1.config,
        fact_entity=v1.fact_entity,
        fact_attribute=v1.fact_attribute,
        fact_score=np.clip(v1.fact_score * 0.5, 0.0, 1.0),
        quality=v1.quality,
        name="v2",
    )
    service = TruthService(v1)
    valid = {
        name: art.fact_scores() for name, art in (("v1", v1), ("v2", shifted))
    }
    errors: list[Exception] = []
    stop = threading.Event()

    def reader() -> None:
        pairs = list(valid["v1"])
        try:
            while not stop.is_set():
                scores = service.batch(pairs)
                observed = dict(zip(pairs, scores.tolist()))
                if not any(
                    all(observed[p] == pytest.approx(snap[p]) for p in pairs)
                    for snap in valid.values()
                ):
                    raise AssertionError(f"torn snapshot observed: {observed}")
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    for _ in range(200):
        service.refresh(shifted)
        service.refresh(v1)
    stop.set()
    for thread in threads:
        thread.join(timeout=10)
    assert not errors, errors[0]


# ---------------------------------------------------------------------------
# Streaming artifact emission
# ---------------------------------------------------------------------------
def test_partial_fit_publishes_step_artifacts(tmp_path):
    export_dir = tmp_path / "steps"
    engine = TruthEngine(
        EngineConfig(
            method="ltm",
            params={"iterations": 10, "seed": 2},
            retrain_every=0,
            export_dir=str(export_dir),
            export_every=2,
        )
    )
    engine.fit("paper_example")
    engine.partial_fit([("Pirates 5", "Johnny Depp", "IMDB")])
    assert not export_dir.exists()  # step 1: below the export cadence
    engine.partial_fit([("Pirates 6", "Johnny Depp", "IMDB")])
    published = sorted(p.name for p in export_dir.iterdir())
    assert published == ["step_00002"]

    artifact = load_artifact(export_dir / "step_00002")
    assert artifact.extras["step"] == 2
    assert artifact.fact_scores() == engine.fact_scores
    # The published snapshot is immediately servable.
    assert TruthService(export_dir / "step_00002").truth_of("Pirates 6", "Johnny Depp") > 0


def test_step_numbering_survives_save_load(tmp_path):
    """A reloaded engine keeps numbering steps forward, never overwriting."""
    export_dir = tmp_path / "steps"
    config = EngineConfig(
        method="ltm",
        params={"iterations": 10, "seed": 2},
        retrain_every=0,
        export_dir=str(export_dir),
    )
    engine = TruthEngine(config).fit("paper_example")
    engine.partial_fit([("Pirates 5", "Johnny Depp", "IMDB")])
    engine.partial_fit([("Pirates 6", "Johnny Depp", "IMDB")])
    assert sorted(p.name for p in export_dir.iterdir()) == ["step_00001", "step_00002"]
    first_manifest = (export_dir / "step_00001" / "manifest.json").read_bytes()

    restored = TruthEngine.load(export_dir / "step_00002")
    restored.partial_fit([("Pirates 7", "Johnny Depp", "IMDB")])
    assert sorted(p.name for p in export_dir.iterdir()) == [
        "step_00001",
        "step_00002",
        "step_00003",
    ]
    # The pre-restart artifacts are untouched.
    assert (export_dir / "step_00001" / "manifest.json").read_bytes() == first_manifest
    assert load_artifact(export_dir / "step_00003").extras["step"] == 3


def test_load_detects_mid_overwrite_tear(tmp_path):
    """Old manifest + new arrays (the reverse tear) fails pointedly."""
    engine = TruthEngine(method="voting").fit("paper_example")
    path = engine.save(tmp_path / "artifact")
    bigger = TruthEngine(method="voting").fit(_source_for("books_small"))
    (path / "arrays.npz").write_bytes(bigger.to_artifact().payload()["arrays.npz"])
    with pytest.raises(ArtifactError, match="mid-overwrite"):
        TruthArtifact.load(path)


def test_cli_export_positional_source_is_file_first(tmp_path, capsys, monkeypatch):
    """A local file named like a catalog key means the file, as in integrate."""
    monkeypatch.chdir(tmp_path)
    (tmp_path / "movies").write_text(
        "entity\tattribute\tsource\nOnly Movie\tOnly Director\tonly-source\n",
        encoding="utf-8",
    )
    assert cli.main(["export", "movies", "art", "--method", "voting"]) == 0
    assert "1 facts" in capsys.readouterr().out
    assert cli.main(["query", "art", "Only Movie"]) == 0
    assert "Only Director" in capsys.readouterr().out


def test_streaming_export_dir_publishes_steps(tmp_path):
    from repro.streaming import ClaimStream

    engine = TruthEngine(
        EngineConfig(
            method="ltm",
            params={"iterations": 10, "seed": 1},
            retrain_every=0,
            export_dir=str(tmp_path / "steps"),
        )
    )
    engine.ingest(_source_for("paper_example").iter_triples())
    engine.fit()
    stream = ClaimStream(
        [("Pirates 5", "Johnny Depp", "IMDB"), ("Pirates 5", "Someone", "BadSource.com")],
        batch_entities=1,
    )
    for batch in stream:
        engine.partial_fit(batch)
    published = sorted(p.name for p in (tmp_path / "steps").iterdir())
    assert published == ["step_00001"]


def test_engine_config_validates_export_fields():
    with pytest.raises(ConfigurationError):
        EngineConfig(export_every=0)
    config = EngineConfig.from_dict(
        {"method": "voting", "export_dir": "/tmp/x", "export_every": 3}
    )
    assert config.export_dir == "/tmp/x"
    assert EngineConfig.from_dict(config.to_dict()) == config


# ---------------------------------------------------------------------------
# serve(): anything servable
# ---------------------------------------------------------------------------
def test_serve_from_catalog_key_engine_artifact_and_path(tmp_path):
    from_key = serve("paper_example", method="voting")
    assert from_key.truth_of("Harry Potter", "Johnny Depp") == pytest.approx(1 / 3)

    engine = TruthEngine(method="voting").fit("paper_example")
    from_engine = serve(engine)
    assert len(from_engine) == len(from_key)

    artifact = engine.to_artifact()
    assert len(serve(artifact)) == len(from_key)

    path = artifact.save(tmp_path / "artifact")
    assert len(serve(path)) == len(from_key)
    assert len(serve(str(path))) == len(from_key)


def test_serve_catalog_keys_cover_the_whole_catalog():
    for key in default_catalog().names():
        assert key in CATALOG_OVERRIDES, f"catalog dataset {key!r} missing from tests"


# ---------------------------------------------------------------------------
# CLI: export and query
# ---------------------------------------------------------------------------
def test_cli_export_then_query(tmp_path, capsys):
    artifact = tmp_path / "artifact"
    code = cli.main(
        ["export", "paper_example", str(artifact), "--method", "ltm",
         "--iterations", "10", "--seed", "3"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "wrote artifact" in out and "5 facts" in out

    assert cli.main(["query", str(artifact), "Harry Potter"]) == 0
    out = capsys.readouterr().out
    assert "Daniel Radcliffe" in out and "accepted" in out

    assert cli.main(
        ["query", str(artifact), "Harry Potter", "--attribute", "Daniel Radcliffe"]
    ) == 0
    assert "Daniel Radcliffe" in capsys.readouterr().out

    assert cli.main(["query", str(artifact), "--top", "2"]) == 0
    lines = [
        line for line in capsys.readouterr().out.splitlines() if line.count("\t") == 2
    ]
    assert len(lines) == 2


def test_cli_query_errors(tmp_path, capsys):
    assert cli.main(["query", str(tmp_path / "nope"), "x"]) == 2
    assert "error" in capsys.readouterr().err

    artifact = tmp_path / "artifact"
    assert cli.main(["export", "paper_example", str(artifact), "--method", "voting"]) == 0
    capsys.readouterr()
    assert cli.main(["query", str(artifact), "Unknown Entity"]) == 1
    assert "no stored facts" in capsys.readouterr().err
    assert cli.main(["query", str(artifact), "--attribute", "x"]) == 2
    assert "requires an entity" in capsys.readouterr().err


def test_cli_export_rejects_bad_method(tmp_path, capsys):
    assert cli.main(["export", "paper_example", str(tmp_path / "a"), "--method", "nope"]) == 2
    assert "unknown method" in capsys.readouterr().err
    assert cli.main(
        ["export", "paper_example", str(tmp_path / "a"), "--method", "gaussian_ltm"]
    ) == 2
    assert "error" in capsys.readouterr().err

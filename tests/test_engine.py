"""Tests for the unified engine API: registry, config, facade and discover."""

import numpy as np
import pytest

import repro
from repro import EngineConfig, TruthEngine, default_registry, discover
from repro.baselines import Voting
from repro.core.model import LatentTruthModel
from repro.data.claim_builder import build_claim_matrix
from repro.engine.registry import MethodRegistry, MethodSpec
from repro.exceptions import ConfigurationError, NotFittedError, StreamError
from repro.pipeline import run_integration
from repro.streaming import ClaimStream
from repro.types import Triple


def _triples_for(num_entities: int, good_sources: int = 5) -> list[Triple]:
    triples = []
    for e in range(num_entities):
        for s in range(good_sources):
            triples.append(Triple(f"e{e}", f"true_{e}", f"good{s}"))
        triples.append(Triple(f"e{e}", f"junk_{e}", "spammer"))
    return triples


class TestMethodRegistry:
    def test_default_registry_covers_all_solver_families(self):
        registry = default_registry()
        for key in ("ltm", "ltm_inc", "ltm_pos", "voting", "truthfinder",
                    "hub_authority", "avg_log", "investment", "pooled_investment",
                    "three_estimates", "gaussian_ltm", "multi_attribute"):
            assert key in registry

    def test_alias_resolution_is_case_and_separator_insensitive(self):
        registry = default_registry()
        for name in ("LTM", "ltm", "Latent-Truth-Model"):
            assert registry.resolve(name) == "ltm"
        assert registry.resolve("3-Estimates") == "three_estimates"
        assert registry.resolve("LTMpos") == "ltm_pos"

    def test_unknown_method_raises_configuration_error(self):
        registry = default_registry()
        with pytest.raises(ConfigurationError, match="unknown method"):
            registry.create("no-such-method")
        assert "no_such_method" not in registry

    def test_metadata_flags(self):
        registry = default_registry()
        ltm = registry.spec("ltm")
        assert ltm.supports_incremental and ltm.supports_quality and ltm.claim_based
        voting = registry.spec("voting")
        assert not voting.supports_incremental and not voting.supports_quality
        gaussian = registry.spec("gaussian_ltm")
        assert not gaussian.claim_based and gaussian.output_range == "real"
        inc = registry.spec("ltm_inc")
        assert inc.requires_quality
        assert set(ltm.metadata()) >= {"key", "summary", "supports_incremental",
                                       "supports_quality", "output_range"}

    def test_duplicate_registration_rejected(self):
        registry = MethodRegistry()
        registry.register_method("m", Voting, "a method")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register_method("m", Voting, "again")

    def test_create_builds_configured_instances(self):
        model = default_registry().create("ltm", iterations=7, seed=3)
        assert isinstance(model, LatentTruthModel)
        assert model.config.iterations == 7

    def test_alias_colliding_with_canonical_key_rejected(self):
        registry = MethodRegistry()
        registry.register_method("voting", Voting, "a method")
        with pytest.raises(ConfigurationError, match="collides"):
            registry.register_method("other", Voting, "x", aliases=("voting",))

    def test_private_registry_is_isolated(self):
        registry = MethodRegistry()
        registry.register(MethodSpec(key="only", factory=Voting, summary="x"))
        assert registry.names() == ["only"]
        assert "ltm" not in registry


class TestEngineConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(threshold=1.5)
        with pytest.raises(ConfigurationError):
            EngineConfig(retrain_every=-1)
        with pytest.raises(ConfigurationError):
            EngineConfig(method="")

    def test_round_trip_and_overrides(self):
        config = EngineConfig(method="voting", params={"a": 1}, threshold=0.7)
        assert EngineConfig.from_dict(config.to_dict()) == config
        assert config.with_overrides(threshold=0.2).threshold == 0.2
        assert config.with_params(b=2).params == {"a": 1, "b": 2}

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown EngineConfig keys"):
            EngineConfig.from_dict({"method": "ltm", "tresh": 0.5})


class TestTruthEngine:
    def test_fit_predict_quality_lifecycle(self, paper_triples):
        engine = TruthEngine(method="ltm", params={"iterations": 40, "seed": 0})
        assert not engine.is_fitted
        engine.fit(paper_triples)
        assert engine.is_fitted
        scores = engine.predict_proba()
        assert scores.shape == (5,)
        quality = engine.quality_report()
        assert quality.num_sources == 4
        assert "Harry Potter" in engine.merged_records()

    def test_unfitted_engine_raises(self):
        engine = TruthEngine(method="voting")
        with pytest.raises(NotFittedError):
            engine.result()
        with pytest.raises(NotFittedError):
            engine.quality_report()
        with pytest.raises(NotFittedError):
            engine.predict_proba()

    def test_unknown_method_fails_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown method"):
            TruthEngine(method="nope")

    def test_non_claim_based_method_rejected_at_fit(self, paper_triples):
        engine = TruthEngine(method="gaussian_ltm")
        with pytest.raises(ConfigurationError, match="cannot be driven"):
            engine.fit(paper_triples)

    def test_predict_proba_on_new_data_uses_learned_quality(self, paper_triples):
        engine = TruthEngine(method="ltm", params={"iterations": 40, "seed": 0})
        engine.fit(paper_triples)
        scores = engine.predict_proba([("New Movie", "Someone", "IMDB")])
        assert scores.shape == (1,)
        assert 0.0 <= float(scores[0]) <= 1.0

    def test_predict_proba_new_data_without_quality_raises(self, paper_triples):
        engine = TruthEngine(method="voting")
        engine.fit(paper_triples)
        with pytest.raises(NotFittedError, match="source quality"):
            engine.predict_proba([("New Movie", "Someone", "IMDB")])

    def test_quality_requiring_method_without_quality_raises(self, paper_claims):
        engine = TruthEngine(method="ltm_inc")
        with pytest.raises(ConfigurationError, match="previously learned source quality"):
            engine.fit(paper_claims)

    def test_threshold_governs_merged_records(self, paper_triples):
        engine = TruthEngine(method="voting", threshold=0.9)
        engine.fit(paper_triples)
        strict = engine.merged_records()
        lenient = engine.merged_records(threshold=0.3)
        assert sum(map(len, strict.values())) <= sum(map(len, lenient.values()))

    def test_solver_instance_bypasses_registry(self, paper_claims):
        solver = LatentTruthModel(iterations=30, seed=0)
        engine = TruthEngine(solver=solver)
        engine.fit(paper_claims)
        assert engine.result().method == "LTM"

    def test_non_truthmethod_solver_rejected(self):
        with pytest.raises(ConfigurationError, match="TruthMethod"):
            TruthEngine(solver=object())

    def test_ingest_then_fit(self, paper_triples):
        engine = TruthEngine(method="voting")
        assert engine.ingest(paper_triples) == len(paper_triples)
        assert engine.ingest(paper_triples) == 0  # duplicates dropped
        engine.fit()
        assert engine.result().num_facts == 5

    def test_partial_fit_accepts_raw_triples(self):
        engine = TruthEngine(method="ltm", params={"iterations": 15, "seed": 1},
                             retrain_every=1)
        engine.partial_fit(_triples_for(4))
        assert engine.last_report is not None
        assert engine.last_report.retrained
        assert engine.quality_report().num_sources == 6

    def test_fit_with_data_is_a_fresh_fit(self, paper_triples):
        engine = TruthEngine(method="voting")
        engine.fit(_triples_for(3))
        engine.fit(paper_triples)
        # Scores of the first corpus are gone: fit(data) resets state.
        assert engine.result().num_facts == 5
        assert all(entity.startswith(("Harry", "Pirates")) for entity in engine.merged_records())
        direct = default_registry().create("voting").fit(build_claim_matrix(paper_triples))
        np.testing.assert_array_equal(engine.predict_proba(), direct.scores)

    def test_fit_none_keeps_accumulating(self, paper_triples):
        engine = TruthEngine(method="voting")
        engine.ingest(_triples_for(2))
        engine.fit()
        first = engine.result().num_facts
        engine.ingest(paper_triples)
        engine.fit()
        assert engine.result().num_facts == first + 5

    def test_engine_config_stays_live_mid_stream(self):
        engine = TruthEngine(
            method="ltm", params={"iterations": 10, "seed": 1}, retrain_every=1
        )
        for batch in ClaimStream(_triples_for(4), batch_entities=2):
            engine.partial_fit(batch)
        assert all(r.retrained for r in engine.reports)
        engine.config = engine.config.with_overrides(retrain_every=0)
        report = engine.partial_fit(
            next(iter(ClaimStream(_triples_for(6)[-12:], batch_entities=2)))
        ).last_report
        assert not report.retrained

    def test_partial_fit_empty_batch_rejected(self):
        engine = TruthEngine(method="ltm")
        with pytest.raises(StreamError):
            engine.partial_fit([])


class TestDiscover:
    @pytest.mark.parametrize(
        "method,kwargs",
        [
            ("ltm", {"iterations": 40, "seed": 0}),
            ("voting", {}),
            ("truthfinder", {}),
            ("investment", {}),
        ],
    )
    def test_discover_matches_direct_solver(self, paper_triples, method, kwargs):
        result = discover(paper_triples, method=method, **kwargs)
        direct = default_registry().create(method, **kwargs).fit(
            build_claim_matrix(paper_triples)
        )
        np.testing.assert_array_equal(result.truth_result.scores, direct.scores)

    def test_discover_matches_run_integration(self, paper_triples):
        via_discover = discover(paper_triples, method="ltm", iterations=40, seed=0)
        via_pipeline = run_integration(
            paper_triples, method=LatentTruthModel(iterations=40, seed=0)
        )
        assert via_discover.fact_scores == via_pipeline.fact_scores
        assert via_discover.merged_records == via_pipeline.merged_records
        assert via_discover.rejected_records == via_pipeline.rejected_records

    def test_discover_is_importable_from_package_root(self):
        assert repro.discover is discover
        assert "discover" in repro.__all__ and "TruthEngine" in repro.__all__

    def test_discover_unknown_method(self, paper_triples):
        with pytest.raises(ConfigurationError, match="unknown method"):
            discover(paper_triples, method="wat")

    def test_discover_keep_workspace(self, paper_triples):
        result = discover(paper_triples, method="voting", keep_workspace=True)
        assert result.workspace is not None
        assert "truths" in result.workspace.table_names


class TestStreamingParity:
    def test_partial_fit_is_reproducible(self):
        """Two identically-configured engines stream to identical state.

        Mirrors the examples/streaming_integration.py workload shape:
        bootstrap on a historical prefix, then integrate entity batches with
        periodic re-training.
        """
        triples = _triples_for(24)
        historical, future = ClaimStream.split_prefix(triples, fraction=0.4, seed=1)

        def run_stream():
            engine = TruthEngine(
                method="ltm",
                params={"iterations": 25, "seed": 11},
                retrain_every=2,
            )
            engine.ingest(historical)
            engine.fit()
            for batch in ClaimStream(
                future, batch_entities=4, shuffle_entities=True, seed=2
            ):
                engine.partial_fit(batch)
            return engine

        first, second = run_stream(), run_stream()
        assert first.fact_scores == second.fact_scores
        assert [r.retrained for r in first.reports] == [
            r.retrained for r in second.reports
        ]
        assert first.merged_records(0.5) == second.merged_records(0.5)


class TestRunIntegrationEntryPoint:
    def test_run_integration_accepts_registry_names(self, paper_triples):
        result = run_integration(paper_triples, method="voting")
        assert result.truth_result.method == "Voting"
        with pytest.raises(ConfigurationError):
            run_integration(paper_triples, method=Voting(), iterations=5)

"""Integration tests spanning the whole system (paper-shape assertions).

These tests reproduce, at reduced scale, the qualitative findings of the
paper's evaluation section: LTM (and LTMinc) dominate the baselines on both
simulated datasets, positive-claim-only methods over-predict, propagation
methods under-predict, LTM degrades gracefully with source quality, and the
incremental workflow carries quality forward correctly.
"""

import numpy as np
import pytest

from repro.baselines import Voting
from repro.engine.registry import method_suite
from repro.core.incremental import IncrementalLTM
from repro.core.model import LatentTruthModel
from repro.evaluation import compare_methods, evaluate_scores
from repro.evaluation.protocol import EvaluationProtocol
from repro.synth.ltm_generative import LTMGenerativeConfig, generate_ltm_dataset


@pytest.fixture(scope="module")
def book_comparison(medium_book_dataset_module):
    suite = method_suite(iterations=60, seed=0)
    return compare_methods(
        medium_book_dataset_module,
        suite,
        protocol=EvaluationProtocol(),
        include_incremental=True,
        incremental_kwargs={"iterations": 60, "seed": 0},
    )


@pytest.fixture(scope="module")
def medium_book_dataset_module():
    from repro.synth.books import BookAuthorConfig, BookAuthorSimulator

    config = BookAuthorConfig(num_books=150, num_sellers=60, labelled_books=60, seed=9)
    return BookAuthorSimulator(config).generate()


class TestTable7Shape:
    """The method ordering of paper Table 7 on the simulated book data."""

    def test_ltm_is_best(self, book_comparison):
        ranked = [name for name, _ in book_comparison.ranked_by("accuracy")]
        assert ranked[0] in {"LTM", "LTMinc"}
        assert ranked[1] in {"LTM", "LTMinc"}

    def test_ltm_beats_voting_and_three_estimates(self, book_comparison):
        ltm = book_comparison.metric("LTM", "accuracy")
        assert ltm > book_comparison.metric("Voting", "accuracy")
        assert ltm > book_comparison.metric("3-Estimates", "accuracy")

    def test_ltm_and_ltminc_close(self, book_comparison):
        assert abs(
            book_comparison.metric("LTM", "accuracy") - book_comparison.metric("LTMinc", "accuracy")
        ) < 0.1

    def test_optimistic_methods_have_full_fpr(self, book_comparison):
        for method in ("TruthFinder", "Investment", "LTMpos"):
            assert book_comparison.metric(method, "fpr") > 0.9
            assert book_comparison.metric(method, "recall") == pytest.approx(1.0)

    def test_conservative_methods_have_low_recall(self, book_comparison):
        for method in ("HubAuthority", "AvgLog", "PooledInvestment"):
            assert book_comparison.metric(method, "recall") < 0.6
            assert book_comparison.metric(method, "precision") > 0.9

    def test_voting_has_perfect_precision_but_misses_coauthors(self, book_comparison):
        assert book_comparison.metric("Voting", "precision") > 0.97
        assert book_comparison.metric("Voting", "recall") < 0.9

    def test_ltm_auc_near_one(self, book_comparison):
        assert book_comparison.metric("LTM", "auc") > 0.95


class TestFigure4Shape:
    """LTM accuracy under degraded synthetic source quality."""

    def test_accuracy_high_when_quality_high(self):
        config = LTMGenerativeConfig.with_expected_quality(
            0.9, 0.9, num_facts=400, num_sources=10, seed=0
        )
        dataset = generate_ltm_dataset(config)
        result = LatentTruthModel(iterations=50, seed=0).fit(dataset.claims)
        assert evaluate_scores(result, dataset.labels).accuracy > 0.9

    def test_low_specificity_hurts_more_than_low_sensitivity(self):
        low_sens = LTMGenerativeConfig.with_expected_quality(0.3, 0.9, num_facts=400, num_sources=10, seed=1)
        low_spec = LTMGenerativeConfig.with_expected_quality(0.9, 0.4, num_facts=400, num_sources=10, seed=1)
        acc = {}
        for name, config in (("low_sens", low_sens), ("low_spec", low_spec)):
            dataset = generate_ltm_dataset(config)
            result = LatentTruthModel(iterations=50, seed=0).fit(dataset.claims)
            acc[name] = evaluate_scores(result, dataset.labels).accuracy
        assert acc["low_sens"] > acc["low_spec"]
        assert acc["low_sens"] > 0.7


class TestIncrementalWorkflow:
    def test_quality_carryover_improves_over_cold_start(self, medium_book_dataset_module):
        dataset = medium_book_dataset_module
        training, held_out = dataset.split_labelled_entities()
        model = LatentTruthModel(iterations=60, seed=0)
        training_result = model.fit(training)

        labelled_matrix, labels, _ = dataset.label_subset_matrix()
        warm = IncrementalLTM(training_result.source_quality).fit(labelled_matrix)
        warm_acc = evaluate_scores(warm.scores, labels).accuracy

        cold_scores = Voting().fit(labelled_matrix).scores
        cold_acc = evaluate_scores(cold_scores, labels).accuracy
        assert warm_acc >= cold_acc

    def test_learned_priors_round_trip(self, medium_book_dataset_module):
        dataset = medium_book_dataset_module
        model = LatentTruthModel(iterations=40, seed=0)
        model.fit(dataset.claims)
        priors = model.learned_quality_priors(dataset.claims)
        refit = LatentTruthModel(priors=priors, iterations=40, seed=0).fit(dataset.claims)
        metrics = evaluate_scores(refit, dataset.labels)
        assert metrics.accuracy > 0.85


class TestRuntimeScaling:
    def test_gibbs_runtime_grows_roughly_linearly(self, medium_book_dataset_module):
        """Figure 6 shape: runtime against claims fits a line with high R^2."""
        from repro.evaluation.scaling import entity_subsets, runtime_scaling_study

        subsets = entity_subsets(
            medium_book_dataset_module.claims, fractions=(0.25, 0.5, 0.75, 1.0), seed=0
        )
        measurements, fit = runtime_scaling_study(
            lambda: LatentTruthModel(iterations=20, seed=0), subsets
        )
        assert len(measurements) == 4
        assert fit.slope > 0
        assert fit.r_squared > 0.8

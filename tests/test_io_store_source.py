"""Tests for :class:`~repro.io.store_source.StoreSource` and its plumbing.

The out-of-core contract pinned here (see ISSUE 7):

* a store-backed source yields **bit-identical entity-batch sequences** to
  the in-memory and file sources over the same triples — unshuffled
  (first-seen order) and for any seeded shuffle — so every downstream
  consumer (engine, planner, stream replays) is storage-agnostic;
* ``as_source`` resolves ``store://`` URLs and sniffs SQLite files, and
  claim stores register in the dataset catalog as streaming datasets;
* :class:`~repro.io.sources.TripleFileSource` reads its file lazily — peak
  rows in flight are bounded by the batch size, never the file size;
* the engine fits a store-backed corpus without materialising it, and
  ``retain_history=False`` keeps streaming memory bounded by the window.
"""

import numpy as np
import pytest

from repro.data.loaders import save_triples_csv
from repro.engine import EngineConfig, TruthEngine
from repro.exceptions import ConfigurationError, StoreError, StreamError
from repro.io import MemorySource, StoreSource, as_source, seeded_entity_order
from repro.io.catalog import DatasetCatalog
from repro.io.sources import TripleFileSource
from repro.store import ClaimStore
from repro.types import Triple

TRIPLES = [
    Triple("e1", "a", "s1"),
    Triple("e1", "a", "s2"),
    Triple("e1", "b", "s3"),
    Triple("e2", "c", "s1"),
    Triple("e2", "c", "s3"),
    Triple("e3", "d", "s2"),
]


@pytest.fixture
def store_path(tmp_path):
    path = tmp_path / "claims.db"
    with ClaimStore(path) as store:
        store.append(TRIPLES)
    return path


@pytest.fixture
def tsv_path(tmp_path):
    path = tmp_path / "claims.tsv"
    save_triples_csv(TRIPLES, path)
    return path


class TestStoreSource:
    def test_schema_and_flags(self, store_path):
        with StoreSource(store_path) as source:
            info = source.schema()
            assert info.kind == "store"
            assert info.name == "claims"
            assert info.num_triples == len(TRIPLES)
            assert info.metadata["entities"] == 3
        assert StoreSource.streams and StoreSource.supports_entity_ranges
        assert not MemorySource.streams and not MemorySource.supports_entity_ranges

    def test_iter_triples_matches_ingest_order(self, store_path):
        with StoreSource(store_path) as source:
            assert list(source.iter_triples()) == TRIPLES

    def test_entity_scans_are_indexed(self, store_path):
        with StoreSource(store_path) as source:
            assert list(source.iter_entities()) == ["e1", "e2", "e3"]
            assert source.entity_triples(["e3", "e1"]) == TRIPLES[5:] + TRIPLES[:3]

    def test_claim_matrix_identical_to_memory_source(self, store_path):
        expected = MemorySource(TRIPLES).to_claim_matrix()
        with StoreSource(store_path) as source:
            matrix = source.to_claim_matrix()
        assert np.array_equal(matrix.claim_fact, expected.claim_fact)
        assert np.array_equal(matrix.claim_obs, expected.claim_obs)

    def test_wraps_open_store_without_owning_it(self, store_path):
        with ClaimStore(store_path, read_only=True) as store:
            source = StoreSource(store, name="shared")
            assert source.schema().name == "shared"
            source.close()  # must NOT close the borrowed store handle
            assert len(store) == len(TRIPLES)

    def test_owned_store_closes_with_the_source(self, store_path):
        source = StoreSource(store_path)
        source.close()
        with pytest.raises(StoreError, match="closed"):
            list(source.iter_triples())

    def test_invalid_chunk_size(self, store_path):
        with pytest.raises(StreamError):
            StoreSource(store_path, chunk_size=0)


class TestEntityBatchParity:
    """All three storage tiers must stream identical batch sequences."""

    def _sources(self, store_path, tsv_path):
        return [
            MemorySource(TRIPLES),
            TripleFileSource(tsv_path),
            StoreSource(store_path),
        ]

    def test_unshuffled_first_seen_order(self, store_path, tsv_path):
        expected = [
            b.triples for b in MemorySource(TRIPLES).iter_batches(2, by_entity=True)
        ]
        for source in self._sources(store_path, tsv_path):
            got = [b.triples for b in source.iter_batches(2, by_entity=True)]
            assert got == expected, type(source).__name__

    @pytest.mark.parametrize("seed", [0, 5, 123])
    def test_seeded_shuffle_order(self, store_path, tsv_path, seed):
        expected = [
            b.triples
            for b in MemorySource(TRIPLES).iter_batches(
                2, by_entity=True, shuffle=True, seed=seed
            )
        ]
        for source in self._sources(store_path, tsv_path):
            got = [
                b.triples
                for b in source.iter_batches(2, by_entity=True, shuffle=True, seed=seed)
            ]
            assert got == expected, (type(source).__name__, seed)

    def test_seeded_order_is_the_shared_helper(self, seed=7):
        entities = ["e1", "e2", "e3"]
        ordered = seeded_entity_order(entities, seed)
        assert sorted(ordered) == sorted(entities)
        batches = MemorySource(TRIPLES).iter_batches(
            1, by_entity=True, shuffle=True, seed=seed
        )
        assert [b.entities[0] for b in batches] == ordered


class TestAsSourceStore:
    def test_store_url_absolute(self, store_path):
        source = as_source(f"store://{store_path}")
        assert isinstance(source, StoreSource)
        assert list(source.iter_triples()) == TRIPLES

    def test_store_url_relative(self, store_path, monkeypatch):
        monkeypatch.chdir(store_path.parent)
        source = as_source("store://claims.db")
        assert isinstance(source, StoreSource)
        assert source.schema().num_triples == len(TRIPLES)

    def test_store_url_missing_path_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            as_source(f"store://{tmp_path / 'absent.db'}")
        with pytest.raises(ConfigurationError, match="names no claim store"):
            as_source("store://")

    def test_sqlite_file_path_is_sniffed(self, store_path):
        # A plain path to a .db file resolves to the store tier, not the
        # CSV reader.
        source = as_source(str(store_path))
        assert isinstance(source, StoreSource)

    def test_catalog_register_store(self, store_path):
        catalog = DatasetCatalog()
        catalog.register_store("crawl", store_path, summary="test crawl")
        spec = catalog.spec("crawl")
        assert spec.kind == "store"
        assert spec.streams
        source = catalog.create("crawl")
        assert isinstance(source, StoreSource)
        assert list(source.iter_triples()) == TRIPLES

    def test_catalog_metadata_lists_streaming(self, store_path):
        catalog = DatasetCatalog()
        catalog.register_store("crawl", store_path)
        assert catalog.spec("crawl").metadata()["streams"] is True


class _CountingFileSource(TripleFileSource):
    """A file source that counts rows pulled off the reader seam."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.rows_read = 0

    def _read_rows(self):
        def counted(rows):
            for row in rows:
                self.rows_read += 1
                yield row

        return counted(super()._read_rows())


class TestTripleFileStreaming:
    """Regression: the file source must not materialise the file up front."""

    def _big_file(self, tmp_path, rows=100):
        path = tmp_path / "big.tsv"
        save_triples_csv(
            [Triple(f"e{i}", f"a{i}", "s") for i in range(rows)], path
        )
        return path

    def test_iter_triples_is_lazy(self, tmp_path):
        source = _CountingFileSource(self._big_file(tmp_path))
        iterator = source.iter_triples()
        assert source.rows_read == 0
        next(iterator)
        assert source.rows_read == 1

    def test_plain_batches_bound_rows_in_flight(self, tmp_path):
        source = _CountingFileSource(self._big_file(tmp_path))
        batches = source.iter_batches(5)
        first = next(batches)
        assert len(first) == 5
        # Peak rows pulled to produce one batch == the batch size, never
        # the whole file (the pre-fix behaviour materialised all 100).
        assert source.rows_read == 5
        assert sum(len(b) for b in batches) == 95
        assert source.rows_read == 100

    def test_num_triples_cached_only_after_full_pass(self, tmp_path):
        source = _CountingFileSource(self._big_file(tmp_path))
        iterator = source.iter_triples()
        next(iterator)
        assert source.schema().num_triples is None  # partial pass: unknown
        list(iterator)
        assert source.schema().num_triples == 100


class TestEngineOutOfCore:
    def _quality_triples(self, num_entities=12):
        triples = []
        for e in range(num_entities):
            for s in range(4):
                triples.append(Triple(f"e{e}", f"true_{e}", f"good{s}"))
            triples.append(Triple(f"e{e}", f"junk_{e}", "spammer"))
        return triples

    @pytest.fixture
    def quality_store(self, tmp_path):
        path = tmp_path / "quality.db"
        with ClaimStore(path) as store:
            store.append(self._quality_triples())
        return path

    def test_fit_from_store_matches_in_memory(self, quality_store):
        from_store = TruthEngine(method="voting")
        from_store.fit(f"store://{quality_store}")
        in_memory = TruthEngine(method="voting")
        in_memory.fit(self._quality_triples())
        assert from_store.fact_scores == in_memory.fact_scores

    def test_fit_from_store_keeps_sharded_parity(self, quality_store):
        from repro.engine import ExecutionConfig

        sharded = TruthEngine(
            EngineConfig(
                method="voting",
                execution=ExecutionConfig(num_shards=3, backend="threads"),
            )
        )
        sharded.fit(f"store://{quality_store}")
        serial = TruthEngine(method="voting")
        serial.fit(self._quality_triples())
        assert sharded.fact_scores == serial.fact_scores

    def test_retain_history_false_bounds_engine_memory(self, quality_store):
        config = EngineConfig(
            method="voting", retrain_every=2, cumulative=False, retain_history=False
        )
        engine = TruthEngine(config)
        with StoreSource(quality_store) as source:
            for batch in source.iter_batches(3, by_entity=True):
                engine.partial_fit(batch)
                # The full-stream history stays empty: memory is bounded by
                # the re-train window, not the corpus.
                assert len(engine._history) == 0
        assert engine.fact_scores  # windowed re-fits still produce scores

    def test_retain_history_false_rejects_cumulative_retraining(self):
        with pytest.raises(ConfigurationError, match="retain_history"):
            EngineConfig(retain_history=False, cumulative=True, retrain_every=5)
        # Both escape hatches named in the error are valid configs.
        EngineConfig(retain_history=False, cumulative=False, retrain_every=5)
        EngineConfig(retain_history=False, cumulative=True, retrain_every=0)

"""Tests for the LatentTruthModel public API and quality estimation."""

import numpy as np
import pytest

from repro.core.base import SourceQualityTable
from repro.core.model import LatentTruthModel
from repro.core.priors import BetaPrior, LTMPriors
from repro.core.quality import estimate_source_quality, expected_confusion_counts
from repro.evaluation.metrics import evaluate_scores
from repro.exceptions import ModelError, NotFittedError


class TestLatentTruthModel:
    def test_result_requires_fit(self):
        with pytest.raises(NotFittedError):
            LatentTruthModel().result()

    def test_fit_returns_scores_and_quality(self, paper_claims):
        result = LatentTruthModel(iterations=50, seed=0).fit(paper_claims)
        assert result.method == "LTM"
        assert result.num_facts == paper_claims.num_facts
        assert isinstance(result.source_quality, SourceQualityTable)
        assert result.runtime_seconds > 0
        assert "trace" in result.extras

    def test_reproducibility(self, paper_claims):
        a = LatentTruthModel(iterations=50, seed=11).fit(paper_claims)
        b = LatentTruthModel(iterations=50, seed=11).fit(paper_claims)
        assert np.array_equal(a.scores, b.scores)

    def test_resolved_priors_adaptive_by_default(self, paper_claims):
        model = LatentTruthModel()
        priors = model.resolved_priors(paper_claims)
        assert priors.false_positive.mean == pytest.approx(0.01)

    def test_explicit_priors_are_used(self, paper_claims):
        priors = LTMPriors(false_positive=BetaPrior(1.0, 99.0))
        model = LatentTruthModel(priors=priors)
        assert model.resolved_priors(paper_claims) is priors

    def test_accuracy_on_book_data(self, medium_book_dataset):
        result = LatentTruthModel(iterations=80, seed=0).fit(medium_book_dataset.claims)
        metrics = evaluate_scores(result, medium_book_dataset.labels)
        assert metrics.accuracy >= 0.9
        assert metrics.false_positive_rate <= 0.1

    def test_beats_voting_on_book_data(self, medium_book_dataset):
        from repro.baselines.voting import Voting

        ltm = LatentTruthModel(iterations=80, seed=0).fit(medium_book_dataset.claims)
        voting = Voting().fit(medium_book_dataset.claims)
        ltm_acc = evaluate_scores(ltm, medium_book_dataset.labels).accuracy
        voting_acc = evaluate_scores(voting, medium_book_dataset.labels).accuracy
        assert ltm_acc > voting_acc

    def test_fit_with_checkpoints(self, paper_claims):
        model = LatentTruthModel(iterations=40, burn_in=5, thin=1, seed=0)
        result, snapshots = model.fit_with_checkpoints(paper_claims, checkpoints=[10, 30])
        assert set(snapshots) == {10, 30}
        assert result.num_facts == paper_claims.num_facts

    def test_learned_quality_priors(self, paper_claims):
        model = LatentTruthModel(iterations=40, seed=0)
        model.fit(paper_claims)
        updated = model.learned_quality_priors(paper_claims)
        assert set(updated.per_source) == set(paper_claims.source_names)

    def test_predictions_threshold(self, paper_claims):
        result = LatentTruthModel(iterations=40, seed=0).fit(paper_claims)
        predictions = result.predictions(0.5)
        assert predictions.dtype == bool
        assert predictions.shape == result.scores.shape


class TestSourceQualityEstimation:
    def test_expected_counts_sum_to_claims(self, paper_claims):
        scores = np.full(paper_claims.num_facts, 0.7)
        expected = expected_confusion_counts(paper_claims, scores)
        assert expected.shape == (paper_claims.num_sources, 2, 2)
        assert expected.sum() == pytest.approx(paper_claims.num_claims)

    def test_expected_counts_shape_mismatch(self, paper_claims):
        with pytest.raises(ModelError):
            expected_confusion_counts(paper_claims, np.ones(3))

    def test_degenerate_scores_give_hard_counts(self, paper_claims):
        scores = np.ones(paper_claims.num_facts)
        expected = expected_confusion_counts(paper_claims, scores)
        assert expected[:, 0, :].sum() == pytest.approx(0.0)

    def test_quality_in_unit_interval(self, paper_claims):
        scores = np.linspace(0.1, 0.9, paper_claims.num_facts)
        quality = estimate_source_quality(paper_claims, scores)
        for arr in (quality.sensitivity, quality.specificity, quality.precision):
            assert np.all(arr >= 0.0) and np.all(arr <= 1.0)

    def test_quality_reflects_known_truth(self, paper_dataset):
        # Using the ground truth of Tables 1-4 as "scores", the MAP estimates
        # (with a weak prior) must order the sources as the paper's Table 6:
        # IMDB most sensitive, Netflix least sensitive, BadSource least specific.
        claims = paper_dataset.claims
        scores = np.zeros(claims.num_facts)
        for fact_id, value in paper_dataset.labels.items():
            scores[fact_id] = 1.0 if value else 0.0
        weak = LTMPriors.uniform()
        quality = estimate_source_quality(claims, scores, weak)
        by_name = {name: i for i, name in enumerate(quality.source_names)}
        assert quality.sensitivity[by_name["IMDB"]] > quality.sensitivity[by_name["Netflix"]]
        assert quality.specificity[by_name["BadSource.com"]] < quality.specificity[by_name["IMDB"]]
        assert quality.precision[by_name["BadSource.com"]] < quality.precision[by_name["Netflix"]]

    def test_quality_table_helpers(self, paper_claims):
        scores = np.full(paper_claims.num_facts, 0.5)
        quality = estimate_source_quality(paper_claims, scores)
        ranked = quality.ranked_by_sensitivity()
        assert len(ranked) == paper_claims.num_sources
        assert quality.of(paper_claims.source_names[0])["sensitivity"] == pytest.approx(
            float(quality.sensitivity[0])
        )
        rows = quality.as_rows()
        assert len(rows) == paper_claims.num_sources
        assert np.allclose(quality.false_positive_rate, 1.0 - quality.specificity)
        assert np.allclose(quality.false_negative_rate, 1.0 - quality.sensitivity)

    def test_quality_recovers_generating_parameters(self, small_synthetic):
        dataset, params = small_synthetic
        result = LatentTruthModel(iterations=60, seed=1).fit(dataset.claims)
        quality = result.source_quality
        # Correlation between true and estimated sensitivity should be clearly positive.
        true_sens = params["sensitivity"]
        corr = np.corrcoef(true_sens, quality.sensitivity)[0, 1]
        assert corr > 0.5
        # And accuracy of inferred truth should be high.
        metrics = evaluate_scores(result, dataset.labels)
        assert metrics.accuracy > 0.85

"""Tests for the streaming claim batches and the engine's streaming lifecycle."""

import pytest

from repro.engine import EngineConfig, TruthEngine
from repro.exceptions import StreamError
from repro.streaming import ClaimStream
from repro.streaming.stream import ClaimBatch
from repro.types import Triple


def _streaming_engine(retrain_every=5, iterations=30, cumulative=True, seed=1):
    """A streaming-configured LTM engine (the former OnlineTruthFinder shape)."""
    return TruthEngine(
        EngineConfig(
            method="ltm",
            params={"iterations": iterations, "seed": seed},
            retrain_every=retrain_every,
            cumulative=cumulative,
        )
    )


def _triples_for(num_entities: int, good_sources: int = 5) -> list[Triple]:
    triples = []
    for e in range(num_entities):
        for s in range(good_sources):
            triples.append(Triple(f"e{e}", f"true_{e}", f"good{s}"))
        triples.append(Triple(f"e{e}", f"junk_{e}", "spammer"))
    return triples


class TestClaimStream:
    def test_batches_group_entities(self):
        stream = ClaimStream(_triples_for(10), batch_entities=4)
        batches = list(stream)
        assert len(batches) == 3
        assert stream.num_batches() == 3
        assert sum(len(b.entities) for b in batches) == 10
        assert batches[0].index == 0 and batches[-1].index == 2

    def test_batch_contains_all_entity_triples(self):
        stream = ClaimStream(_triples_for(4), batch_entities=2)
        batch = next(iter(stream))
        for entity in batch.entities:
            expected = [t for t in _triples_for(4) if t.entity == entity]
            got = [t for t in batch.triples if t.entity == entity]
            assert len(got) == len(expected)

    def test_shuffle_is_deterministic_per_seed(self):
        triples = _triples_for(12)
        a = [b.entities for b in ClaimStream(triples, batch_entities=3, shuffle_entities=True, seed=1)]
        b = [b.entities for b in ClaimStream(triples, batch_entities=3, shuffle_entities=True, seed=1)]
        c = [b.entities for b in ClaimStream(triples, batch_entities=3, shuffle_entities=True, seed=2)]
        assert a == b
        assert a != c

    def test_empty_stream_rejected(self):
        with pytest.raises(StreamError):
            ClaimStream([])

    def test_invalid_batch_size(self):
        with pytest.raises(StreamError):
            ClaimStream(_triples_for(2), batch_entities=0)

    def test_split_prefix(self):
        triples = _triples_for(10)
        historical, future = ClaimStream.split_prefix(triples, fraction=0.5, seed=3)
        historical_entities = {t.entity for t in historical}
        future_entities = {t.entity for t in future}
        assert historical_entities.isdisjoint(future_entities)
        assert len(historical_entities) == 5

    def test_split_prefix_invalid_fraction(self):
        with pytest.raises(StreamError):
            ClaimStream.split_prefix(_triples_for(4), fraction=1.5)

    def test_claim_batch_len(self):
        batch = ClaimBatch(index=0, triples=(Triple("e", "a", "s"),))
        assert len(batch) == 1
        assert batch.entities == ["e"]


class TestStreamingEngine:
    def test_bootstrap_then_stream(self):
        triples = _triples_for(30)
        historical, future = ClaimStream.split_prefix(triples, fraction=0.5, seed=0)
        engine = _streaming_engine(retrain_every=0, iterations=30, seed=1)
        engine.ingest(historical)
        engine.fit()
        assert engine.source_quality is not None

        for batch in ClaimStream(future, batch_entities=5):
            engine.partial_fit(batch)
        reports = engine.reports
        assert len(reports) >= 1
        assert all(report.num_facts > 0 for report in reports)
        # The spammer's junk facts should be overwhelmingly rejected while the
        # consensus facts are accepted.
        merged = engine.merged_records(threshold=0.5)
        accepted_values = {v for values in merged.values() for v in values}
        accepted_junk = sum(1 for v in accepted_values if v.startswith("junk_"))
        accepted_true = sum(1 for v in accepted_values if v.startswith("true_"))
        assert accepted_true >= 25
        assert accepted_junk <= 3

    def test_cold_start_falls_back_to_voting(self):
        engine = _streaming_engine(retrain_every=2, iterations=20, seed=1)
        batches = list(ClaimStream(_triples_for(8), batch_entities=4))
        report = engine.partial_fit(batches[0]).last_report
        assert report.retrained is False
        assert engine.source_quality is None
        report2 = engine.partial_fit(batches[1]).last_report
        assert report2.retrained is True
        assert engine.source_quality is not None

    def test_periodic_retraining_counts(self):
        engine = _streaming_engine(retrain_every=2, iterations=15, seed=1)
        for batch in ClaimStream(_triples_for(12), batch_entities=3):
            engine.partial_fit(batch)
        retrain_flags = [r.retrained for r in engine.reports]
        assert retrain_flags == [False, True, False, True]

    def test_non_cumulative_retraining(self):
        engine = _streaming_engine(retrain_every=1, iterations=15, cumulative=False, seed=1)
        for batch in ClaimStream(_triples_for(9), batch_entities=3):
            engine.partial_fit(batch)
        assert all(r.retrained for r in engine.reports)
        assert engine.source_quality is not None

    def test_empty_batch_rejected(self):
        engine = _streaming_engine()
        with pytest.raises(StreamError):
            engine.partial_fit(ClaimBatch(index=0, triples=()))

    def test_fit_requires_triples(self):
        from repro.exceptions import EmptyDatasetError

        engine = _streaming_engine()
        with pytest.raises(EmptyDatasetError):
            engine.fit()

    def test_step_report_accepted_facts(self):
        engine = _streaming_engine(retrain_every=0, iterations=20, seed=1)
        engine.ingest(_triples_for(10))
        engine.fit()
        batch = next(iter(ClaimStream(_triples_for(20)[30:], batch_entities=50)))
        report = engine.partial_fit(batch).last_report
        accepted = report.accepted_facts(threshold=0.5)
        assert all(isinstance(pair, tuple) and len(pair) == 2 for pair in accepted)

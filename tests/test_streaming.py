"""Tests for the streaming claim batches and the online integration engine."""

import pytest

from repro.exceptions import StreamError
from repro.streaming import ClaimStream, OnlineTruthFinder
from repro.streaming.stream import ClaimBatch
from repro.types import Triple

# Legacy entry points are exercised on purpose: they must keep delegating.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _triples_for(num_entities: int, good_sources: int = 5) -> list[Triple]:
    triples = []
    for e in range(num_entities):
        for s in range(good_sources):
            triples.append(Triple(f"e{e}", f"true_{e}", f"good{s}"))
        triples.append(Triple(f"e{e}", f"junk_{e}", "spammer"))
    return triples


class TestClaimStream:
    def test_batches_group_entities(self):
        stream = ClaimStream(_triples_for(10), batch_entities=4)
        batches = list(stream)
        assert len(batches) == 3
        assert stream.num_batches() == 3
        assert sum(len(b.entities) for b in batches) == 10
        assert batches[0].index == 0 and batches[-1].index == 2

    def test_batch_contains_all_entity_triples(self):
        stream = ClaimStream(_triples_for(4), batch_entities=2)
        batch = next(iter(stream))
        for entity in batch.entities:
            expected = [t for t in _triples_for(4) if t.entity == entity]
            got = [t for t in batch.triples if t.entity == entity]
            assert len(got) == len(expected)

    def test_shuffle_is_deterministic_per_seed(self):
        triples = _triples_for(12)
        a = [b.entities for b in ClaimStream(triples, batch_entities=3, shuffle_entities=True, seed=1)]
        b = [b.entities for b in ClaimStream(triples, batch_entities=3, shuffle_entities=True, seed=1)]
        c = [b.entities for b in ClaimStream(triples, batch_entities=3, shuffle_entities=True, seed=2)]
        assert a == b
        assert a != c

    def test_empty_stream_rejected(self):
        with pytest.raises(StreamError):
            ClaimStream([])

    def test_invalid_batch_size(self):
        with pytest.raises(StreamError):
            ClaimStream(_triples_for(2), batch_entities=0)

    def test_split_prefix(self):
        triples = _triples_for(10)
        historical, future = ClaimStream.split_prefix(triples, fraction=0.5, seed=3)
        historical_entities = {t.entity for t in historical}
        future_entities = {t.entity for t in future}
        assert historical_entities.isdisjoint(future_entities)
        assert len(historical_entities) == 5

    def test_split_prefix_invalid_fraction(self):
        with pytest.raises(StreamError):
            ClaimStream.split_prefix(_triples_for(4), fraction=1.5)

    def test_claim_batch_len(self):
        batch = ClaimBatch(index=0, triples=(Triple("e", "a", "s"),))
        assert len(batch) == 1
        assert batch.entities == ["e"]


class TestOnlineTruthFinder:
    def test_bootstrap_then_stream(self):
        triples = _triples_for(30)
        historical, future = ClaimStream.split_prefix(triples, fraction=0.5, seed=0)
        engine = OnlineTruthFinder(retrain_every=0, iterations=30, seed=1)
        quality = engine.bootstrap(historical)
        assert quality is not None
        assert engine.source_quality is not None

        reports = engine.run(ClaimStream(future, batch_entities=5))
        assert len(reports) >= 1
        assert all(report.num_facts > 0 for report in reports)
        # The spammer's junk facts should be overwhelmingly rejected while the
        # consensus facts are accepted.
        merged = engine.merged_records(threshold=0.5)
        accepted_values = {v for values in merged.values() for v in values}
        accepted_junk = sum(1 for v in accepted_values if v.startswith("junk_"))
        accepted_true = sum(1 for v in accepted_values if v.startswith("true_"))
        assert accepted_true >= 25
        assert accepted_junk <= 3

    def test_cold_start_falls_back_to_voting(self):
        engine = OnlineTruthFinder(retrain_every=2, iterations=20, seed=1)
        batches = list(ClaimStream(_triples_for(8), batch_entities=4))
        report = engine.integrate_batch(batches[0])
        assert report.retrained is False
        assert engine.source_quality is None
        report2 = engine.integrate_batch(batches[1])
        assert report2.retrained is True
        assert engine.source_quality is not None

    def test_periodic_retraining_counts(self):
        engine = OnlineTruthFinder(retrain_every=2, iterations=15, seed=1)
        reports = engine.run(ClaimStream(_triples_for(12), batch_entities=3))
        retrain_flags = [r.retrained for r in reports]
        assert retrain_flags == [False, True, False, True]

    def test_non_cumulative_retraining(self):
        engine = OnlineTruthFinder(retrain_every=1, iterations=15, cumulative=False, seed=1)
        reports = engine.run(ClaimStream(_triples_for(9), batch_entities=3))
        assert all(r.retrained for r in reports)
        assert engine.source_quality is not None

    def test_empty_batch_rejected(self):
        engine = OnlineTruthFinder()
        with pytest.raises(StreamError):
            engine.integrate_batch(ClaimBatch(index=0, triples=()))

    def test_bootstrap_requires_new_triples(self):
        engine = OnlineTruthFinder()
        with pytest.raises(StreamError):
            engine.bootstrap([])

    def test_invalid_retrain_every(self):
        with pytest.raises(StreamError):
            OnlineTruthFinder(retrain_every=-1)

    def test_step_report_accepted_facts(self):
        engine = OnlineTruthFinder(retrain_every=0, iterations=20, seed=1)
        engine.bootstrap(_triples_for(10))
        batch = next(iter(ClaimStream(_triples_for(20)[30:], batch_entities=50)))
        report = engine.integrate_batch(batch)
        accepted = report.accepted_facts(threshold=0.5)
        assert all(isinstance(pair, tuple) and len(pair) == 2 for pair in accepted)

"""Shared fixtures: the paper's worked example and small simulated datasets."""

from __future__ import annotations

import pytest

from repro.data.claim_builder import ClaimTableBuilder, build_dataset
from repro.data.raw import RawDatabase
from repro.synth.books import BookAuthorConfig, BookAuthorSimulator
from repro.synth.ltm_generative import LTMGenerativeConfig, generate_ltm_dataset_with_parameters
from repro.synth.movies import MovieDirectorConfig, MovieDirectorSimulator
from repro.types import Triple

# ---------------------------------------------------------------------------
# The worked example of paper Tables 1-4 (Harry Potter cast).
# ---------------------------------------------------------------------------
PAPER_EXAMPLE_TRIPLES = [
    Triple("Harry Potter", "Daniel Radcliffe", "IMDB"),
    Triple("Harry Potter", "Emma Watson", "IMDB"),
    Triple("Harry Potter", "Rupert Grint", "IMDB"),
    Triple("Harry Potter", "Daniel Radcliffe", "Netflix"),
    Triple("Harry Potter", "Daniel Radcliffe", "BadSource.com"),
    Triple("Harry Potter", "Emma Watson", "BadSource.com"),
    Triple("Harry Potter", "Johnny Depp", "BadSource.com"),
    Triple("Pirates 4", "Johnny Depp", "Hulu.com"),
]

PAPER_EXAMPLE_TRUTH = {
    ("Harry Potter", "Daniel Radcliffe"): True,
    ("Harry Potter", "Emma Watson"): True,
    ("Harry Potter", "Rupert Grint"): True,
    ("Harry Potter", "Johnny Depp"): False,
    ("Pirates 4", "Johnny Depp"): True,
}


@pytest.fixture
def paper_triples() -> list[Triple]:
    """The raw database of paper Table 1."""
    return list(PAPER_EXAMPLE_TRIPLES)


@pytest.fixture
def paper_raw(paper_triples) -> RawDatabase:
    """Table 1 as a RawDatabase."""
    return RawDatabase(paper_triples)


@pytest.fixture
def paper_builder(paper_raw) -> ClaimTableBuilder:
    """A claim builder over the paper example."""
    return ClaimTableBuilder(paper_raw)


@pytest.fixture
def paper_claims(paper_builder):
    """The claim matrix of paper Table 3."""
    return paper_builder.build()


@pytest.fixture
def paper_dataset(paper_triples):
    """The paper example as a fully-labelled TruthDataset (Tables 1-4)."""
    return build_dataset(paper_triples, truth=PAPER_EXAMPLE_TRUTH, name="paper-example")


# ---------------------------------------------------------------------------
# Small simulated datasets (session-scoped: they are deterministic and reused).
# ---------------------------------------------------------------------------
@pytest.fixture(scope="session")
def small_book_dataset():
    """A small simulated book-author dataset with full behaviour diversity."""
    return BookAuthorSimulator(BookAuthorConfig.small(seed=5)).generate()


@pytest.fixture(scope="session")
def small_movie_dataset():
    """A small simulated movie-director dataset using the paper's 12 sources."""
    return MovieDirectorSimulator(MovieDirectorConfig.small(seed=5)).generate()


@pytest.fixture(scope="session")
def medium_book_dataset():
    """A medium simulated book dataset used by accuracy-sensitive tests."""
    config = BookAuthorConfig(num_books=150, num_sellers=60, labelled_books=60, seed=9)
    return BookAuthorSimulator(config).generate()


@pytest.fixture(scope="session")
def small_synthetic():
    """A small LTM-generative synthetic dataset with known parameters.

    The quality priors are deliberately wide (``alpha1=(6, 4)``) so that the
    sampled per-source sensitivities are spread out and parameter-recovery
    tests have signal to correlate against.
    """
    config = LTMGenerativeConfig(
        num_facts=400, num_sources=12, alpha0=(5.0, 45.0), alpha1=(6.0, 4.0), seed=3
    )
    return generate_ltm_dataset_with_parameters(config)

"""Round-trip tests for dataset serialisation."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.loaders import (
    load_dataset_json,
    load_labels_csv,
    load_triples_csv,
    save_dataset_json,
    save_labels_csv,
    save_triples_csv,
)
from repro.exceptions import DataModelError
from repro.types import Triple


class TestTripleCsv:
    def test_round_trip(self, paper_raw, tmp_path):
        path = tmp_path / "triples.tsv"
        count = save_triples_csv(paper_raw, path)
        assert count == len(paper_raw)
        loaded = load_triples_csv(path)
        assert len(loaded) == len(paper_raw)
        assert set(loaded.sources) == set(paper_raw.sources)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("")
        with pytest.raises(DataModelError):
            load_triples_csv(path)

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a\tb\tc\n1\t2\t3\n")
        with pytest.raises(DataModelError):
            load_triples_csv(path)

    def test_wrong_column_count_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("entity\tattribute\tsource\nonly-two\tcolumns\n")
        with pytest.raises(DataModelError):
            load_triples_csv(path)

    def test_multichar_delimiter_rejected(self, tmp_path):
        with pytest.raises(DataModelError):
            save_triples_csv([Triple("e", "a", "s")], tmp_path / "x.tsv", delimiter="||")

    def test_quotechar_delimiter_rejected(self, tmp_path):
        with pytest.raises(DataModelError):
            load_triples_csv(tmp_path / "x.tsv", delimiter='"')


# Values deliberately include the tab / comma delimiters, quotes, carriage
# returns and newlines — the characters that break naive split-based formats.
_nasty_text = st.text(
    alphabet=st.sampled_from(list("ab\t,;\"'\n\r é")), min_size=1, max_size=8
)
_triples_strategy = st.lists(
    st.tuples(_nasty_text, _nasty_text, _nasty_text).map(lambda t: Triple(*t)),
    min_size=1,
    max_size=20,
    unique=True,
)


class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(triples=_triples_strategy, delimiter=st.sampled_from(["\t", ",", ";", "|"]))
    def test_triples_survive_save_load(self, triples, delimiter, tmp_path):
        path = tmp_path / "triples.any"
        count = save_triples_csv(triples, path, delimiter=delimiter)
        assert count == len(triples)
        loaded = load_triples_csv(path, delimiter=delimiter)
        assert sorted(t.as_tuple() for t in loaded) == sorted(t.as_tuple() for t in triples)

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        labels=st.dictionaries(
            st.tuples(_nasty_text, _nasty_text), st.booleans(), min_size=1, max_size=15
        ),
        delimiter=st.sampled_from(["\t", ","]),
    )
    def test_labels_survive_save_load(self, labels, delimiter, tmp_path):
        path = tmp_path / "labels.any"
        assert save_labels_csv(labels, path, delimiter=delimiter) == len(labels)
        assert load_labels_csv(path, delimiter=delimiter) == labels


class TestLabelCsv:
    def test_round_trip(self, tmp_path):
        labels = {("book1", "alice"): True, ("book1", "bob"): False}
        path = tmp_path / "labels.tsv"
        assert save_labels_csv(labels, path) == 2
        loaded = load_labels_csv(path)
        assert loaded == labels

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "labels.tsv"
        path.write_text("")
        with pytest.raises(DataModelError):
            load_labels_csv(path)

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "labels.tsv"
        path.write_text("entity\tattribute\tsource\nbook\talice\t1\n")
        with pytest.raises(DataModelError):
            load_labels_csv(path)

    def test_malformed_truth_value_rejected(self, tmp_path):
        path = tmp_path / "labels.tsv"
        path.write_text("entity\tattribute\ttruth\nbook\talice\tmaybe\n")
        with pytest.raises(DataModelError, match="truth column"):
            load_labels_csv(path)


class TestDatasetJson:
    def test_round_trip(self, paper_dataset, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset_json(paper_dataset, path)
        loaded = load_dataset_json(path)
        assert loaded.name == paper_dataset.name
        assert loaded.claims.num_facts == paper_dataset.claims.num_facts
        assert loaded.claims.num_claims == paper_dataset.claims.num_claims
        assert loaded.labels == paper_dataset.labels
        assert np.array_equal(loaded.claims.claim_obs, paper_dataset.claims.claim_obs)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{\"name\": \"x\"}")
        with pytest.raises(DataModelError):
            load_dataset_json(path)

"""Tests for the incremental source confusion counts."""

import numpy as np
import pytest

from repro.core.counts import SourceCounts
from repro.exceptions import ModelError


class TestSourceCounts:
    def test_from_assignment(self, paper_claims):
        truth = np.ones(paper_claims.num_facts, dtype=np.int64)
        counts = SourceCounts.from_assignment(paper_claims, truth)
        assert counts.total() == paper_claims.num_claims
        # Everything sits in the truth=1 buckets.
        assert counts.counts[:, 0, :].sum() == 0
        assert counts.true_positives.sum() == paper_claims.num_positive_claims
        assert counts.false_negatives.sum() == paper_claims.num_negative_claims

    def test_from_assignment_all_false(self, paper_claims):
        truth = np.zeros(paper_claims.num_facts, dtype=np.int64)
        counts = SourceCounts.from_assignment(paper_claims, truth)
        assert counts.false_positives.sum() == paper_claims.num_positive_claims
        assert counts.true_negatives.sum() == paper_claims.num_negative_claims

    def test_wrong_truth_shape(self, paper_claims):
        with pytest.raises(ModelError):
            SourceCounts.from_assignment(paper_claims, np.ones(3))

    def test_move_fact_round_trip(self, paper_claims):
        truth = np.ones(paper_claims.num_facts, dtype=np.int64)
        counts = SourceCounts.from_assignment(paper_claims, truth)
        before = counts.counts.copy()
        sources, obs = paper_claims.claims_of(0)
        counts.move_fact(sources, obs, old_truth=1, new_truth=0)
        assert counts.total() == paper_claims.num_claims
        counts.move_fact(sources, obs, old_truth=0, new_truth=1)
        assert np.array_equal(counts.counts, before)

    def test_move_fact_same_bucket_is_noop(self, paper_claims):
        truth = np.ones(paper_claims.num_facts, dtype=np.int64)
        counts = SourceCounts.from_assignment(paper_claims, truth)
        before = counts.counts.copy()
        sources, obs = paper_claims.claims_of(0)
        counts.move_fact(sources, obs, old_truth=1, new_truth=1)
        assert np.array_equal(counts.counts, before)

    def test_move_matches_rebuild(self, paper_claims):
        truth = np.ones(paper_claims.num_facts, dtype=np.int64)
        counts = SourceCounts.from_assignment(paper_claims, truth)
        sources, obs = paper_claims.claims_of(2)
        counts.move_fact(sources, obs, old_truth=1, new_truth=0)
        truth[2] = 0
        rebuilt = SourceCounts.from_assignment(paper_claims, truth)
        assert np.array_equal(counts.counts, rebuilt.counts)

    def test_add_and_remove_fact(self, paper_claims):
        counts = SourceCounts(paper_claims.num_sources)
        sources, obs = paper_claims.claims_of(0)
        counts.add_fact(sources, obs, truth=1)
        assert counts.total() == len(sources)
        counts.remove_fact(sources, obs, truth=1)
        assert counts.total() == 0

    def test_totals_by_truth(self, paper_claims):
        truth = np.ones(paper_claims.num_facts, dtype=np.int64)
        counts = SourceCounts.from_assignment(paper_claims, truth)
        totals = counts.totals_by_truth()
        assert totals.shape == (paper_claims.num_sources, 2)
        assert totals.sum() == paper_claims.num_claims

    def test_copy_is_independent(self, paper_claims):
        truth = np.ones(paper_claims.num_facts, dtype=np.int64)
        counts = SourceCounts.from_assignment(paper_claims, truth)
        clone = counts.copy()
        clone.counts[0, 0, 0] += 5
        assert counts.counts[0, 0, 0] != clone.counts[0, 0, 0]

    def test_verify_non_negative(self):
        counts = SourceCounts(2)
        counts.counts[0, 0, 0] = -1
        with pytest.raises(ModelError):
            counts.verify_non_negative()

    def test_requires_positive_sources(self):
        with pytest.raises(ModelError):
            SourceCounts(0)

"""Unit tests for repro.store.table and repro.store.index."""

import pytest

from repro.exceptions import DuplicateKeyError, SchemaError, UnknownColumnError
from repro.store import Column, HashIndex, Schema, Table


@pytest.fixture
def people_table() -> Table:
    schema = Schema(
        columns=(Column("name", str), Column("team", str), Column("age", int)),
        key=("name",),
    )
    table = Table("people", schema)
    table.insert({"name": "ada", "team": "red", "age": 36})
    table.insert({"name": "bob", "team": "blue", "age": 29})
    table.insert({"name": "cat", "team": "red", "age": 41})
    return table


class TestTable:
    def test_len_and_iteration(self, people_table):
        assert len(people_table) == 3
        assert [row["name"] for row in people_table] == ["ada", "bob", "cat"]

    def test_getitem(self, people_table):
        assert people_table[1]["name"] == "bob"

    def test_insert_returns_position(self, people_table):
        position = people_table.insert({"name": "dan", "team": "blue", "age": 22})
        assert position == 3

    def test_duplicate_key_rejected(self, people_table):
        with pytest.raises(DuplicateKeyError):
            people_table.insert({"name": "ada", "team": "blue", "age": 99})

    def test_schema_violation_rejected(self, people_table):
        with pytest.raises(SchemaError):
            people_table.insert({"name": "eve", "team": "red", "age": "old"})

    def test_get_by_key(self, people_table):
        assert people_table.get("ada")["age"] == 36
        assert people_table.get(("bob",))["team"] == "blue"
        assert people_table.get("zzz") is None

    def test_contains_key(self, people_table):
        assert people_table.contains_key("cat")
        assert not people_table.contains_key("dog")

    def test_upsert_replaces(self, people_table):
        people_table.upsert({"name": "ada", "team": "green", "age": 37})
        assert len(people_table) == 3
        assert people_table.get("ada")["team"] == "green"

    def test_upsert_inserts_new(self, people_table):
        people_table.upsert({"name": "dan", "team": "green", "age": 20})
        assert len(people_table) == 4

    def test_insert_many(self, people_table):
        positions = people_table.insert_many(
            [{"name": "dan", "team": "blue", "age": 22}, {"name": "eve", "team": "red", "age": 30}]
        )
        assert positions == [3, 4]

    def test_clear(self, people_table):
        people_table.clear()
        assert len(people_table) == 0
        assert people_table.get("ada") is None

    def test_column_and_distinct(self, people_table):
        assert people_table.column("team") == ["red", "blue", "red"]
        assert people_table.distinct("team") == ["red", "blue"]

    def test_column_unknown(self, people_table):
        with pytest.raises(UnknownColumnError):
            people_table.column("salary")

    def test_scan_with_predicate(self, people_table):
        reds = list(people_table.scan(lambda row: row["team"] == "red"))
        assert {row["name"] for row in reds} == {"ada", "cat"}

    def test_scan_without_predicate(self, people_table):
        assert len(list(people_table.scan())) == 3

    def test_to_records(self, people_table):
        records = people_table.to_records()
        assert records[0] == ("ada", "red", 36)

    def test_secondary_index_lookup(self, people_table):
        people_table.create_index("by_team", ["team"])
        rows = people_table.lookup("by_team", "red")
        assert {row["name"] for row in rows} == {"ada", "cat"}

    def test_index_maintained_on_insert(self, people_table):
        people_table.create_index("by_team", ["team"])
        people_table.insert({"name": "dan", "team": "red", "age": 22})
        assert len(people_table.lookup("by_team", "red")) == 3

    def test_index_on_unknown_column(self, people_table):
        with pytest.raises(UnknownColumnError):
            people_table.create_index("bad", ["salary"])

    def test_unknown_index_name(self, people_table):
        with pytest.raises(UnknownColumnError):
            people_table.index("missing")


class TestHashIndex:
    def test_add_and_lookup(self):
        index = HashIndex(["k"])
        index.add(0, {"k": "a"})
        index.add(1, {"k": "a"})
        index.add(2, {"k": "b"})
        assert index.lookup("a") == [0, 1]
        assert index.lookup(("b",)) == [2]
        assert index.lookup("missing") == []

    def test_remove(self):
        index = HashIndex(["k"])
        index.add(0, {"k": "a"})
        index.remove(0, {"k": "a"})
        assert "a" not in index
        # Removing again is a no-op.
        index.remove(0, {"k": "a"})

    def test_rebuild_and_len(self):
        index = HashIndex(["k"])
        index.rebuild([{"k": "a"}, {"k": "b"}, {"k": "a"}])
        assert len(index) == 2
        assert sorted(index.keys()) == [("a",), ("b",)]

    def test_multi_column_key(self):
        index = HashIndex(["a", "b"])
        index.add(0, {"a": 1, "b": 2})
        assert index.lookup((1, 2)) == [0]

    def test_requires_columns(self):
        with pytest.raises(UnknownColumnError):
            HashIndex([])

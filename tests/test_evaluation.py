"""Tests for the evaluation harness: confusion, metrics, ROC, thresholds, comparisons."""

import numpy as np
import pytest

from repro.baselines import Voting
from repro.core.base import TruthResult
from repro.core.model import LatentTruthModel
from repro.evaluation import (
    ComparisonTable,
    auc_score,
    best_threshold,
    compare_methods,
    evaluate_predictions,
    evaluate_scores,
    linear_fit,
    roc_curve,
    source_confusion_matrices,
    source_quality_from_truth,
    threshold_sweep,
)
from repro.evaluation.confusion import ConfusionMatrix
from repro.evaluation.protocol import evaluate_incremental_ltm, evaluate_method_on_dataset
from repro.evaluation.scaling import entity_subsets, runtime_scaling_study
from repro.exceptions import EvaluationError, MissingGroundTruthError


class TestConfusionMatrix:
    def test_paper_table6_values(self, paper_dataset):
        """The worked example of paper Table 6: IMDB / Netflix / BadSource.com."""
        matrices = source_confusion_matrices(paper_dataset.claims, paper_dataset.labels)

        imdb = matrices["IMDB"]
        assert (imdb.true_positives, imdb.false_positives, imdb.false_negatives, imdb.true_negatives) == (3, 0, 0, 1)
        assert imdb.precision == 1.0 and imdb.accuracy == 1.0
        assert imdb.sensitivity == 1.0 and imdb.specificity == 1.0

        netflix = matrices["Netflix"]
        assert (netflix.true_positives, netflix.false_negatives) == (1, 2)
        assert netflix.precision == 1.0
        assert netflix.accuracy == pytest.approx(0.5)
        assert netflix.sensitivity == pytest.approx(1 / 3)
        assert netflix.specificity == 1.0

        bad = matrices["BadSource.com"]
        assert (bad.true_positives, bad.false_positives, bad.false_negatives, bad.true_negatives) == (2, 1, 1, 0)
        assert bad.precision == pytest.approx(2 / 3)
        assert bad.accuracy == pytest.approx(0.5)
        assert bad.sensitivity == pytest.approx(2 / 3)
        assert bad.specificity == 0.0

    def test_requires_labels(self, paper_claims):
        with pytest.raises(MissingGroundTruthError):
            source_confusion_matrices(paper_claims, {})

    def test_quality_table_from_truth(self, paper_dataset):
        table = source_quality_from_truth(paper_dataset.claims, paper_dataset.labels)
        imdb = table.of("IMDB")
        assert imdb["sensitivity"] == 1.0 and imdb["specificity"] == 1.0

    def test_derived_measures_edge_cases(self):
        empty = ConfusionMatrix(0, 0, 0, 0)
        # With no graded claims the error-rate measures default to "no errors".
        assert empty.precision == 1.0
        assert empty.sensitivity == 1.0
        assert np.isnan(empty.accuracy)
        assert empty.f1 == 1.0
        combined = empty + ConfusionMatrix(1, 2, 3, 4)
        assert combined.total == 10
        assert set(combined.as_dict()) >= {"TP", "precision", "f1"}


class TestMetrics:
    def test_evaluate_predictions(self):
        metrics = evaluate_predictions([True, True, False, False], [True, False, True, False])
        assert metrics.precision == pytest.approx(0.5)
        assert metrics.recall == pytest.approx(0.5)
        assert metrics.accuracy == pytest.approx(0.5)
        assert metrics.false_positive_rate == pytest.approx(0.5)
        assert metrics.support == 4

    def test_shape_mismatch(self):
        with pytest.raises(EvaluationError):
            evaluate_predictions([True], [True, False])

    def test_empty_rejected(self):
        with pytest.raises(MissingGroundTruthError):
            evaluate_predictions([], [])

    def test_evaluate_scores_with_mapping(self):
        scores = np.array([0.9, 0.4, 0.8, 0.1])
        labels = {0: True, 1: True, 2: False, 3: False}
        metrics = evaluate_scores(scores, labels)
        assert metrics.support == 4
        assert metrics.recall == pytest.approx(0.5)

    def test_evaluate_scores_with_result(self, paper_dataset):
        result = TruthResult(method="x", scores=np.array([1.0, 1.0, 1.0, 0.0, 1.0]))
        metrics = evaluate_scores(result, paper_dataset.labels)
        assert metrics.accuracy == 1.0

    def test_evaluate_scores_missing_label(self):
        with pytest.raises(MissingGroundTruthError):
            evaluate_scores(np.array([0.5]), {0: True}, fact_ids=[0, 1])

    def test_evaluate_scores_array_labels(self):
        metrics = evaluate_scores(np.array([0.9, 0.1]), np.array([True, False]))
        assert metrics.accuracy == 1.0

    def test_threshold_behaviour(self):
        scores = np.array([0.5])
        assert evaluate_scores(scores, {0: True}, threshold=0.5).recall == 1.0
        assert evaluate_scores(scores, {0: True}, threshold=0.6).recall == 0.0


class TestRoc:
    def test_perfect_ranking(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([True, True, False, False])
        assert auc_score(scores, labels) == pytest.approx(1.0)

    def test_random_ranking_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(2000)
        labels = rng.random(2000) < 0.5
        assert auc_score(scores, labels) == pytest.approx(0.5, abs=0.05)

    def test_inverted_ranking_zero(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([True, True, False, False])
        assert auc_score(scores, labels) == pytest.approx(0.0)

    def test_curve_endpoints(self):
        fpr, tpr, thresholds = roc_curve([0.9, 0.1], [True, False])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thresholds[0] == np.inf

    def test_requires_both_classes(self):
        with pytest.raises(EvaluationError):
            roc_curve([0.5, 0.6], [True, True])

    def test_requires_alignment(self):
        with pytest.raises(EvaluationError):
            roc_curve([0.5], [True, False])


class TestThresholdSweep:
    def test_sweep_and_best(self, paper_dataset):
        result = TruthResult(method="x", scores=np.array([0.9, 0.8, 0.6, 0.3, 0.7]))
        sweep = threshold_sweep(result, paper_dataset.labels, thresholds=[0.2, 0.5, 0.95])
        assert set(sweep) == {0.2, 0.5, 0.95}
        threshold, value = best_threshold(sweep, metric="accuracy")
        assert threshold == 0.5
        assert value == 1.0

    def test_invalid_threshold(self, paper_dataset):
        result = TruthResult(method="x", scores=np.zeros(5))
        with pytest.raises(EvaluationError):
            threshold_sweep(result, paper_dataset.labels, thresholds=[1.5])

    def test_best_threshold_empty(self):
        with pytest.raises(EvaluationError):
            best_threshold({})

    def test_best_threshold_unknown_metric(self, paper_dataset):
        result = TruthResult(method="x", scores=np.zeros(5))
        sweep = threshold_sweep(result, paper_dataset.labels, thresholds=[0.5])
        with pytest.raises(EvaluationError):
            best_threshold(sweep, metric="nonsense")


class TestProtocolAndComparison:
    def test_evaluate_method_on_dataset(self, small_book_dataset):
        evaluation = evaluate_method_on_dataset(Voting(), small_book_dataset)
        assert evaluation.method_name == "Voting"
        assert 0.0 <= evaluation.metrics.accuracy <= 1.0
        assert not np.isnan(evaluation.auc)
        row = evaluation.as_row()
        assert row["dataset"] == small_book_dataset.name

    def test_incremental_protocol(self, medium_book_dataset):
        evaluation = evaluate_incremental_ltm(medium_book_dataset, iterations=50, seed=0)
        assert evaluation.method_name == "LTMinc"
        assert evaluation.metrics.accuracy > 0.8

    def test_compare_methods_table(self, small_book_dataset):
        table = compare_methods(
            small_book_dataset,
            [Voting(), LatentTruthModel(iterations=30, seed=0)],
        )
        assert table.methods() == ["Voting", "LTM"]
        assert 0 <= table.metric("LTM", "accuracy") <= 1
        assert table.metric("Voting", "auc") > 0.5
        ranked = table.ranked_by("accuracy")
        assert len(ranked) == 2
        rows = table.as_rows()
        assert len(rows) == 2
        formatted = table.format()
        assert "Voting" in formatted and "precision" in formatted

    def test_comparison_unknown_method(self):
        table = ComparisonTable(dataset_name="d")
        with pytest.raises(EvaluationError):
            table.evaluation("missing")

    def test_accuracy_curves(self, small_book_dataset):
        table = compare_methods(small_book_dataset, [Voting()])
        curves = table.accuracy_curves(small_book_dataset, thresholds=[0.25, 0.5, 0.75])
        assert set(curves["Voting"]) == {0.25, 0.5, 0.75}


class TestScaling:
    def test_linear_fit_exact(self):
        fit = linear_fit([1, 2, 3, 4], [2, 4, 6, 8])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(0.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(10) == pytest.approx(20.0)

    def test_linear_fit_validation(self):
        with pytest.raises(EvaluationError):
            linear_fit([1], [2])
        with pytest.raises(EvaluationError):
            linear_fit([1, 2], [1])

    def test_entity_subsets_nested_sizes(self, small_book_dataset):
        subsets = entity_subsets(small_book_dataset.claims, fractions=(0.3, 0.6, 1.0), seed=1)
        sizes = [s.num_entities for s in subsets]
        assert sizes == sorted(sizes)
        assert subsets[-1].num_entities == small_book_dataset.claims.num_entities

    def test_entity_subsets_invalid_fraction(self, small_book_dataset):
        with pytest.raises(EvaluationError):
            entity_subsets(small_book_dataset.claims, fractions=(0.0,))

    def test_runtime_scaling_study(self, small_book_dataset):
        subsets = entity_subsets(small_book_dataset.claims, fractions=(0.5, 1.0), seed=1)
        measurements, fit = runtime_scaling_study(lambda: Voting(), subsets)
        assert len(measurements) == 2
        assert all(m["runtime_seconds"] >= 0 for m in measurements)
        assert fit.slope is not None

    def test_runtime_scaling_invalid_repeats(self, small_book_dataset):
        with pytest.raises(EvaluationError):
            runtime_scaling_study(lambda: Voting(), [small_book_dataset.claims], repeats=0)

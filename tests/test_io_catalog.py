"""Tests for the dataset catalog, `as_source` coercion, and — the acceptance
criterion of the `repro.io` unification — score parity: for every catalog
source, `TruthEngine.fit(source)` and streaming `partial_fit` over
`source.iter_batches(...)` must produce scores identical to the pre-existing
`build_dataset` / `ClaimTableBuilder` path."""

import numpy as np
import pytest

from repro.baselines.voting import Voting
from repro.core.model import LatentTruthModel
from repro.core.priors import LTMPriors
from repro.data.claim_builder import ClaimTableBuilder, build_dataset
from repro.data.loaders import save_dataset_json, save_triples_csv
from repro.data.raw import RawDatabase
from repro.engine import EngineConfig, TruthEngine
from repro.exceptions import ConfigurationError
from repro.io import (
    DataSource,
    DatasetCatalog,
    DatasetSource,
    DatasetSpec,
    JsonDatasetSource,
    MemorySource,
    TableSource,
    TripleFileSource,
    as_source,
    default_catalog,
)
from repro.store import Column, Schema, Table
from repro.streaming import ClaimStream
from repro.types import Triple

TRIPLES = [
    Triple("e1", "a", "s1"),
    Triple("e1", "a", "s2"),
    Triple("e1", "b", "s3"),
    Triple("e2", "c", "s1"),
    Triple("e2", "c", "s3"),
]

#: Small parameterisations so the full-catalog parity sweep stays fast.  Every
#: catalog key must appear here — a new dataset without a parity entry fails.
SMALL_PARAMS: dict[str, dict] = {
    "paper_example": {},
    "books": {"num_books": 40, "num_sellers": 15, "labelled_books": 10, "seed": 5},
    "books_small": {"seed": 5},
    "movies": {"num_movies": 80, "labelled_movies": 20, "seed": 5},
    "movies_small": {"seed": 5},
    "ltm_generative": {"num_facts": 60, "num_sources": 8, "seed": 5},
    "adversarial": {"num_movies": 80, "labelled_movies": 20, "seed": 5},
}


class TestDatasetCatalog:
    def test_default_catalog_keys(self):
        names = default_catalog().names()
        for key in ("paper_example", "books", "movies", "ltm_generative", "adversarial"):
            assert key in names

    def test_aliases_resolve(self):
        catalog = default_catalog()
        assert catalog.resolve("book_authors") == "books"
        assert catalog.resolve("Movie-Directors") == "movies"
        assert catalog.resolve("SYNTHETIC") == "ltm_generative"
        assert "harry_potter" in catalog

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown dataset"):
            default_catalog().spec("no_such_dataset")

    def test_create_passes_params(self):
        source = default_catalog().create("ltm_generative", num_facts=12, num_sources=3, seed=0)
        dataset = source.to_dataset()
        assert dataset.claims.num_facts == 12
        assert dataset.claims.num_sources == 3

    def test_register_custom_dataset(self):
        catalog = DatasetCatalog()
        catalog.register_dataset(
            "mine",
            lambda: MemorySource(TRIPLES, name="mine"),
            "my triples",
            kind="memory",
            aliases=("my-data",),
        )
        assert catalog.resolve("My Data") == "mine"
        assert len(list(catalog.create("mine").iter_triples())) == len(TRIPLES)
        with pytest.raises(ConfigurationError, match="already registered"):
            catalog.register_dataset("mine", lambda: None, "dup")

    def test_spec_metadata(self):
        meta = default_catalog().spec("books").metadata()
        assert meta["key"] == "books"
        assert meta["has_labels"] is True


class TestAsSource:
    def test_datasource_passthrough(self):
        source = MemorySource(TRIPLES)
        assert as_source(source) is source
        with pytest.raises(ConfigurationError):
            as_source(source, seed=3)  # params without a catalog key

    def test_coerces_every_ingestion_style(self, tmp_path):
        tsv = tmp_path / "crawl.tsv"
        save_triples_csv(TRIPLES, tsv)
        json_path = tmp_path / "ds.json"
        save_dataset_json(build_dataset(TRIPLES), json_path)
        table = Table(
            "raw",
            Schema(columns=(Column("entity", object), Column("attribute", object), Column("source", object))),
        )
        for t in TRIPLES:
            table.insert({"entity": t.entity, "attribute": t.attribute, "source": t.source})

        assert isinstance(as_source(TRIPLES), MemorySource)
        assert isinstance(as_source(RawDatabase(TRIPLES)), MemorySource)
        assert isinstance(as_source(build_dataset(TRIPLES)), DatasetSource)
        assert isinstance(as_source(table), TableSource)
        assert isinstance(as_source(str(tsv)), TripleFileSource)
        assert isinstance(as_source(json_path), JsonDatasetSource)
        assert isinstance(as_source("books_small"), DataSource)

        for coerced in (as_source(TRIPLES), as_source(str(tsv))):
            assert sorted(t.as_tuple() for t in coerced.iter_triples()) == sorted(
                t.as_tuple() for t in TRIPLES
            )

    def test_unresolvable_inputs_rejected(self):
        with pytest.raises(ConfigurationError, match="neither a registered dataset"):
            as_source("definitely/not/a/thing")
        with pytest.raises(ConfigurationError):
            as_source(42)


class TestCatalogParity:
    """`TruthEngine.fit(source)` == pre-existing `build_dataset` path."""

    def test_every_catalog_key_has_parity_params(self):
        assert sorted(default_catalog().names()) == sorted(SMALL_PARAMS)

    @pytest.mark.parametrize("key", sorted(SMALL_PARAMS))
    def test_fit_scores_identical_to_prebuilt_path(self, key):
        source = default_catalog().create(key, **SMALL_PARAMS[key])
        triples = list(source.iter_triples())

        # The pre-existing path: per-triple RawDatabase + sequential builder,
        # solver fitted directly on the matrix.
        matrix = ClaimTableBuilder(RawDatabase(triples, strict=False)).build()
        expected = Voting().fit(matrix).scores

        engine = TruthEngine(method="voting").fit(source)
        np.testing.assert_array_equal(engine.result().scores, expected)
        # Same facts, same order.
        assert [(f.entity, f.attribute) for f in engine.claims().facts] == [
            (f.entity, f.attribute) for f in matrix.facts
        ]

    @pytest.mark.parametrize("key", ["paper_example", "books_small", "ltm_generative"])
    def test_fit_scores_identical_under_sampling(self, key):
        """Gibbs-sampled LTM is bit-identical too (same matrix, same seed)."""
        source = default_catalog().create(key, **SMALL_PARAMS[key])
        triples = list(source.iter_triples())
        matrix = ClaimTableBuilder(RawDatabase(triples, strict=False)).build()
        expected = LatentTruthModel(iterations=25, seed=11).fit(matrix).scores

        engine = TruthEngine(method="ltm", iterations=25, seed=11).fit(source)
        np.testing.assert_array_equal(engine.result().scores, expected)

    @pytest.mark.parametrize("key", ["books_small", "movies_small"])
    def test_streaming_partial_fit_parity(self, key):
        """partial_fit over iter_batches == the pre-existing ClaimStream path."""
        source = default_catalog().create(key, **SMALL_PARAMS[key])
        triples = list(source.iter_triples())

        config = EngineConfig(
            method="ltm",
            params={"priors": LTMPriors(), "iterations": 10, "seed": 3},
            retrain_every=2,
        )

        via_source = TruthEngine(config)
        for batch in source.iter_batches(25, by_entity=True):
            via_source.partial_fit(batch)

        via_stream = TruthEngine(config)
        for batch in ClaimStream(triples, batch_entities=25):
            via_stream.partial_fit(batch)

        assert via_source.fact_scores == via_stream.fact_scores
        assert [r.retrained for r in via_source.reports] == [
            r.retrained for r in via_stream.reports
        ]

    def test_partial_fit_accepts_source_as_one_batch(self):
        engine = TruthEngine(method="ltm", iterations=10, seed=1)
        engine.partial_fit("paper_example")
        assert engine.last_report is not None
        assert engine.last_report.num_triples == 8

    def test_fit_accepts_catalog_key_and_predicts(self):
        engine = TruthEngine(method="ltm", iterations=15, seed=2).fit("books_small")
        assert engine.is_fitted
        scores = engine.predict_proba("paper_example")
        assert scores.shape[0] == 5

    def test_tables_and_datasets_do_not_fall_through_to_iterable_path(self):
        """A relational Table / TruthDataset must coerce, not iterate as rows."""
        from repro.pipeline.integrate import run_integration

        table = Table(
            "raw",
            Schema(columns=(Column("entity", object), Column("attribute", object), Column("source", object))),
        )
        for t in TRIPLES:
            table.insert({"entity": t.entity, "attribute": t.attribute, "source": t.source})
        dataset = build_dataset(TRIPLES)

        expected = sorted(
            (f.entity, f.attribute) for f in build_dataset(TRIPLES).claims.facts
        )
        for data in (table, dataset):
            result = run_integration(data, method=Voting())
            assert sorted(result.fact_scores) == expected
            engine = TruthEngine(method="voting").fit(data)
            assert sorted(engine.fact_scores) == expected

    def test_engine_rejects_unknown_hyperparameters_at_construction(self):
        with pytest.raises(ConfigurationError, match="does not accept parameter"):
            TruthEngine(method="voting", seed=7)  # Voting takes no seed
        with pytest.raises(ConfigurationError, match="does not accept parameter"):
            TruthEngine(method="ltm", thresold=0.7)  # typo of threshold
        # Valid hyperparameters still route into solver params.
        engine = TruthEngine(method="ltm", iterations=25, seed=11, threshold=0.6)
        assert engine.config.params == {"iterations": 25, "seed": 11}
        assert engine.config.threshold == 0.6

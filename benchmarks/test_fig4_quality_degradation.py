"""E5 — paper Figure 4: LTM accuracy under degraded synthetic source quality.

Data is drawn from LTM's own generative process (Section 6.1.1).  One quality
dimension's expectation is swept from low to high while the other is held at
0.9, and LTM's accuracy is recorded.  The paper's findings to reproduce:
accuracy stays high until quality drops below roughly 0.6, and it degrades
much faster with specificity than with sensitivity.
"""

from conftest import write_result

from repro.core.model import LatentTruthModel
from repro.evaluation.metrics import evaluate_scores
from repro.synth.ltm_generative import LTMGenerativeConfig, generate_ltm_dataset

# Scaled-down version of the paper's 10k facts x 20 sources synthetic data.
NUM_FACTS = 1000
NUM_SOURCES = 12
SWEEP = (0.1, 0.3, 0.5, 0.7, 0.9)
ITERATIONS = 60


def _accuracy(expected_sensitivity: float, expected_specificity: float, seed: int) -> float:
    config = LTMGenerativeConfig.with_expected_quality(
        expected_sensitivity,
        expected_specificity,
        num_facts=NUM_FACTS,
        num_sources=NUM_SOURCES,
        seed=seed,
    )
    dataset = generate_ltm_dataset(config)
    result = LatentTruthModel(iterations=ITERATIONS, seed=seed).fit(dataset.claims)
    return evaluate_scores(result, dataset.labels).accuracy


def test_fig4_quality_degradation(benchmark, results_dir):
    def sweep():
        varying_sensitivity = {q: _accuracy(q, 0.9, seed=101) for q in SWEEP}
        varying_specificity = {q: _accuracy(0.9, q, seed=101) for q in SWEEP}
        return varying_sensitivity, varying_specificity

    varying_sensitivity, varying_specificity = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # High quality on both axes => near-perfect accuracy.
    assert varying_sensitivity[0.9] > 0.95
    assert varying_specificity[0.9] > 0.95
    # Accuracy degrades monotonically enough: the low end is clearly worse than the high end.
    assert varying_sensitivity[0.1] < varying_sensitivity[0.9]
    assert varying_specificity[0.1] < varying_specificity[0.9]
    # The paper's key observation: LTM tolerates low sensitivity better than
    # low specificity (mid-range sweep points are higher on the sensitivity curve).
    assert varying_sensitivity[0.5] > varying_specificity[0.5]
    assert varying_sensitivity[0.3] > varying_specificity[0.3]
    # Near-random behaviour once specificity collapses.
    assert varying_specificity[0.1] < 0.65

    lines = ["Figure 4 (reproduced) — LTM accuracy under degraded synthetic source quality", ""]
    lines.append(f"{'expected quality':>18} {'vary sensitivity':>18} {'vary specificity':>18}")
    for q in SWEEP:
        lines.append(f"{q:>18.1f} {varying_sensitivity[q]:>18.3f} {varying_specificity[q]:>18.3f}")
    text = "\n".join(lines) + "\n"
    write_result(results_dir, "fig4_quality_degradation.txt", text)
    print("\n" + text)

    benchmark.extra_info["varying_sensitivity"] = varying_sensitivity
    benchmark.extra_info["varying_specificity"] = varying_specificity

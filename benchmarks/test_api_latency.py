"""E12 — HTTP API latency under concurrent load: the repro.api serving tier.

The network-tier claim behind :mod:`repro.api` is that putting the
hot-swappable :class:`~repro.serving.TruthService` behind an ASGI app keeps
truth queries cheap: request handling adds parsing, routing, rate-limit
accounting, metrics and JSON encoding on top of the underlying hash-index
lookup, and all of it must stay worth serving.  This benchmark drives the
app in process through :class:`~repro.api.ASGIClient` (no sockets, so it
measures the application stack, not the kernel) with many concurrent client
tasks issuing a realistic endpoint mix:

* **point** — ``GET /truth/{entity}?attribute=...`` single-fact lookups;
* **list**  — ``GET /truth/{entity}`` ranked per-entity listings;
* **batch** — ``POST /batch`` with 32-pair payloads;
* **top-k** — ``GET /top-k?k=10`` global rankings.

A second phase turns the per-client token bucket on and hammers one client
past its budget, pinning that overload is answered with cheap 429s (with
``Retry-After``) rather than errors.  Results are recorded under
``benchmarks/results/api_latency.txt`` with conservative floors.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np

from repro.api import ASGIClient, create_app
from repro.engine import TruthEngine
from repro.io import as_source

from conftest import write_result

NUM_MOVIES = 800
NUM_CLIENTS = 8
REQUESTS_PER_CLIENT = 150
BATCH_PAIRS = 32

#: Conservative floor (requests/sec across the whole mix) — an order of
#: magnitude under what a laptop does in process, so the assertion catches a
#: quadratic handler or accidental per-request refit, not a slow CI box.
MIN_REQUESTS_PER_S = 1_000.0

BURST_REQUESTS = 40
BURST_BUCKET = 5


def _percentile(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def test_api_latency_under_load(results_dir):
    source = as_source("movies", seed=31, num_movies=NUM_MOVIES, labelled_movies=100)
    engine = TruthEngine(method="ltm", iterations=25, seed=7).fit(source)
    app = create_app(engine.to_artifact(name="api-latency"), rate=None)
    client = ASGIClient(app)

    known = list(engine.fact_scores)
    rng = np.random.default_rng(17)
    picks = rng.integers(0, len(known), size=NUM_CLIENTS * REQUESTS_PER_CLIENT)
    batch_body = json.dumps(
        {"pairs": [list(known[i]) for i in rng.integers(0, len(known), size=BATCH_PAIRS)]}
    ).encode()

    from urllib.parse import quote

    latencies: dict[str, list[float]] = {"point": [], "list": [], "batch": [], "top-k": []}
    errors: list[int] = []

    async def client_task(client_index: int) -> None:
        for j in range(REQUESTS_PER_CLIENT):
            entity, attribute = known[picks[client_index * REQUESTS_PER_CLIENT + j]]
            kind = ("point", "list", "batch", "top-k")[j % 4]
            start = time.perf_counter()
            if kind == "point":
                response = await client.get(
                    f"/truth/{quote(entity)}?attribute={quote(str(attribute))}"
                )
            elif kind == "list":
                response = await client.get(f"/truth/{quote(entity)}")
            elif kind == "batch":
                response = await client.post(
                    "/batch",
                    body=batch_body,
                    headers={"Content-Type": "application/json"},
                )
            else:
                response = await client.get("/top-k?k=10")
            latencies[kind].append(time.perf_counter() - start)
            if response.status != 200:
                errors.append(response.status)

    async def load() -> float:
        start = time.perf_counter()
        await asyncio.gather(*[client_task(i) for i in range(NUM_CLIENTS)])
        return time.perf_counter() - start

    elapsed = asyncio.run(load())
    total_requests = NUM_CLIENTS * REQUESTS_PER_CLIENT
    requests_per_s = total_requests / elapsed

    # Phase 2: one client hammers a rate-limited app past its token budget.
    limited = create_app(
        engine.to_artifact(name="api-latency-limited"), rate=1.0, burst=BURST_BUCKET
    )
    limited_client = ASGIClient(limited)

    async def burst() -> tuple[int, int, bool]:
        ok = throttled = 0
        saw_retry_after = False
        for _ in range(BURST_REQUESTS):
            response = await limited_client.get("/top-k?k=5")
            if response.status == 200:
                ok += 1
            elif response.status == 429:
                throttled += 1
                saw_retry_after = saw_retry_after or "retry-after" in response.headers
        return ok, throttled, saw_retry_after

    ok, throttled, saw_retry_after = asyncio.run(burst())

    all_samples = [s for samples in latencies.values() for s in samples]
    lines = [
        "E12  HTTP API latency under concurrent load (repro.api, in-process ASGI)",
        "",
        f"artifact: {len(known)} facts (movies feed, {NUM_MOVIES} movies)",
        f"load:     {NUM_CLIENTS} concurrent clients x {REQUESTS_PER_CLIENT} requests, "
        f"mix point/list/batch({BATCH_PAIRS} pairs)/top-k",
        "",
        f"{'endpoint':10s}  {'requests':>8s}  {'p50 ms':>8s}  {'p95 ms':>8s}  {'p99 ms':>8s}",
        f"{'-' * 10}  {'-' * 8}  {'-' * 8}  {'-' * 8}  {'-' * 8}",
    ]
    for kind in ("point", "list", "batch", "top-k"):
        samples = latencies[kind]
        lines.append(
            f"{kind:10s}  {len(samples):8d}  "
            f"{_percentile(samples, 50) * 1e3:8.3f}  "
            f"{_percentile(samples, 95) * 1e3:8.3f}  "
            f"{_percentile(samples, 99) * 1e3:8.3f}"
        )
    lines += [
        "",
        f"overall:  {total_requests} requests in {elapsed:.3f}s = {requests_per_s:,.0f} req/s, "
        f"{len(errors)} non-200s, "
        f"mix p99 {_percentile(all_samples, 99) * 1e3:.3f} ms",
        f"overload: {BURST_REQUESTS} burst requests at rate=1/s burst={BURST_BUCKET} -> "
        f"{ok} x 200, {throttled} x 429 (Retry-After: "
        f"{'present' if saw_retry_after else 'MISSING'})",
        "",
        f"floor: >= {MIN_REQUESTS_PER_S:,.0f} req/s across the mix",
        "",
    ]
    write_result(results_dir, "api_latency.txt", "\n".join(lines))

    assert not errors, f"non-200 responses under load: {errors[:5]}"
    assert requests_per_s >= MIN_REQUESTS_PER_S, f"API too slow: {requests_per_s:,.0f} req/s"
    assert ok == BURST_BUCKET  # exactly the bucket drains successfully
    assert throttled == BURST_REQUESTS - BURST_BUCKET
    assert saw_retry_after

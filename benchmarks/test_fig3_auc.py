"""E4 — paper Figure 3: area under the ROC curve per method per dataset.

Computes each fitted method's AUC over the labelled facts of both datasets
and checks the paper's finding that LTM's ranking quality is at or near the
top on both datasets (several methods get close to 1.0 on the easier book
data; the gap shows up on the harder movie data).
"""

from conftest import write_result


def _render(table) -> str:
    lines = [f"Figure 3 (reproduced) — AUC per method, dataset: {table.dataset_name}", ""]
    for name, auc in table.ranked_by("auc"):
        lines.append(f"  {name:<18s} {auc:.3f}")
    return "\n".join(lines) + "\n"


def test_fig3_auc_per_method(benchmark, book_comparison, movie_comparison, results_dir):
    def collect():
        return {
            "book": dict(book_comparison.ranked_by("auc")),
            "movie": dict(movie_comparison.ranked_by("auc")),
        }

    aucs = benchmark.pedantic(collect, rounds=5, iterations=1)

    # LTM is within a hair of the best AUC on the book data and at the top on the movie data.
    book = aucs["book"]
    movie = aucs["movie"]
    assert book["LTM"] > 0.95
    assert movie["LTM"] >= max(v for k, v in movie.items() if k not in {"LTM", "LTMinc"}) - 0.02
    # The positive-claims-only ablation ranks clearly worse than full LTM on both datasets.
    assert book["LTM"] > book["LTMpos"]
    assert movie["LTM"] > movie["LTMpos"]

    text = _render(book_comparison) + "\n" + _render(movie_comparison)
    write_result(results_dir, "fig3_auc.txt", text)
    print("\n" + text)

    benchmark.extra_info.update({f"book_auc_{k}": v for k, v in book.items()})
    benchmark.extra_info.update({f"movie_auc_{k}": v for k, v in movie.items()})

"""E11 — Serving throughput: TruthService point lookups and batch scoring.

The serving claim behind :mod:`repro.serving` is that once LTM has learned
source quality, truth queries are *lookups* and new claims are a *closed-form
pass* (Equation 3) — no sampling, which is what lets the learned model serve
traffic instead of recomputing.  This benchmark builds a movie-feed artifact,
serves it with :class:`~repro.serving.TruthService`, and measures

* **point** — ``truth_of(entity, attribute)`` hash-index lookups;
* **batch** — ``batch(pairs)`` vectorised lookups;
* **score** — ``score(triples)`` closed-form LTMinc scoring of fresh claims
  from a mix of seen and unseen sources (the cold-start serving path).

Results are recorded under ``benchmarks/results/query_latency.txt`` with a
conservative throughput floor asserted per path.
"""

from __future__ import annotations

import gc
import time

import numpy as np

from repro.engine import TruthEngine
from repro.io import as_source
from repro.serving import TruthService

from conftest import write_result

NUM_MOVIES = 1_500
NUM_POINT_LOOKUPS = 200_000
NUM_SCORED_TRIPLES = 50_000
REPEATS = 3

#: Conservative floors (ops/sec) — an order of magnitude under what a laptop
#: does, so the assertion catches accidental O(n) lookups, not slow CI boxes.
MIN_POINT_PER_S = 50_000.0
MIN_BATCH_PER_S = 100_000.0
MIN_SCORE_PER_S = 10_000.0


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    """Best wall-clock of ``repeats`` runs (GC collected and paused per run)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        best = min(best, elapsed)
    return best, result


def test_query_latency(results_dir):
    source = as_source("movies", seed=31, num_movies=NUM_MOVIES, labelled_movies=100)
    engine = TruthEngine(method="ltm", iterations=25, seed=7).fit(source)
    service = TruthService(engine.to_artifact(name="query-latency"))

    rng = np.random.default_rng(17)
    known = list(engine.fact_scores)
    pairs = [known[i] for i in rng.integers(0, len(known), size=NUM_POINT_LOOKUPS)]

    def run_point() -> float:
        truth_of = service.truth_of
        total = 0.0
        for entity, attribute in pairs:
            total += truth_of(entity, attribute)
        return total

    point_s, _ = _best_of(run_point)
    batch_s, batch_scores = _best_of(lambda: service.batch(pairs))
    assert batch_scores.shape == (NUM_POINT_LOOKUPS,)

    # Fresh claims: unseen entities, every 5th claim from an unseen source.
    sources = list(engine.quality_report().source_names)
    score_triples = [
        (
            f"fresh_movie_{i % 10_000:05d}",
            f"fresh_director_{i % 3}",
            sources[i % len(sources)] if i % 5 else f"unseen_source_{i % 7}",
        )
        for i in range(NUM_SCORED_TRIPLES)
    ]
    score_s, scored = _best_of(lambda: service.score(score_triples))
    assert np.all((scored >= 0.0) & (scored <= 1.0))

    point_per_s = NUM_POINT_LOOKUPS / point_s
    batch_per_s = NUM_POINT_LOOKUPS / batch_s
    score_per_s = NUM_SCORED_TRIPLES / score_s

    lines = [
        "E11  Serving throughput: TruthService point lookups and batch scoring",
        "",
        f"artifact: {len(service)} facts, {len(service.entities())} entities, "
        f"{service.quality.num_sources} sources "
        f"(movies feed, {NUM_MOVIES} movies)",
        f"timing:   best of {REPEATS} runs each",
        "",
        f"{'path':18s}  {'ops':>9s}  {'seconds':>9s}  {'ops/sec':>12s}",
        f"{'-' * 18}  {'-' * 9}  {'-' * 9}  {'-' * 12}",
        f"{'point truth_of':18s}  {NUM_POINT_LOOKUPS:9d}  {point_s:9.3f}  {point_per_s:12,.0f}",
        f"{'batch lookup':18s}  {NUM_POINT_LOOKUPS:9d}  {batch_s:9.3f}  {batch_per_s:12,.0f}",
        f"{'score (LTMinc)':18s}  {NUM_SCORED_TRIPLES:9d}  {score_s:9.3f}  {score_per_s:12,.0f}",
        "",
        f"floors: point >= {MIN_POINT_PER_S:,.0f}/s, batch >= {MIN_BATCH_PER_S:,.0f}/s, "
        f"score >= {MIN_SCORE_PER_S:,.0f}/s",
        "",
    ]
    write_result(results_dir, "query_latency.txt", "\n".join(lines))

    assert point_per_s >= MIN_POINT_PER_S, f"point lookups too slow: {point_per_s:,.0f}/s"
    assert batch_per_s >= MIN_BATCH_PER_S, f"batch lookups too slow: {batch_per_s:,.0f}/s"
    assert score_per_s >= MIN_SCORE_PER_S, f"closed-form scoring too slow: {score_per_s:,.0f}/s"

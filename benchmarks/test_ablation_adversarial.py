"""E11 (ablation) — Section 7, adversarial sources.

Injects two adversarial feeds into the simulated movie data and compares LTM's
false-positive rate before and after the iterative source-filtering loop.
The filter must identify and remove the injected feeds and restore (or improve
on) the poisoned model's false-positive rate.
"""

from conftest import SEED, write_result

from repro.core.model import LatentTruthModel
from repro.evaluation.metrics import evaluate_scores
from repro.extensions.adversarial import AdversarialSourceFilter
from repro.synth.movies import MovieDirectorConfig, MovieDirectorSimulator

ADVERSARIES = {"scraperbot": (0.30, 0.05), "linkfarm": (0.25, 0.10)}


def _poisoned_dataset():
    simulator = MovieDirectorSimulator(MovieDirectorConfig(num_movies=600, seed=SEED))
    simulator.source_quality = dict(simulator.source_quality)
    simulator.source_quality.update(ADVERSARIES)
    return simulator.generate()


def test_ablation_adversarial_source_filtering(benchmark, results_dir):
    dataset = _poisoned_dataset()

    def run_filter():
        return AdversarialSourceFilter(
            specificity_threshold=0.6,
            precision_threshold=0.6,
            iterations=60,
            seed=SEED,
        ).run(dataset.claims)

    report = benchmark.pedantic(run_filter, rounds=1, iterations=1)

    poisoned = LatentTruthModel(iterations=60, seed=SEED).fit(dataset.claims)
    poisoned_metrics = evaluate_scores(poisoned, dataset.labels)

    filtered_metrics = evaluate_scores(report.final_result.scores, dataset.labels)

    # The filter removes at least one of the injected adversaries and no more
    # than a couple of legitimate feeds.
    assert any(name in report.removed_sources for name in ADVERSARIES)
    legitimate_removed = [n for n in report.removed_sources if n not in ADVERSARIES]
    assert len(legitimate_removed) <= 2
    # Filtering does not hurt, and it improves the false positive rate.
    assert filtered_metrics.false_positive_rate <= poisoned_metrics.false_positive_rate + 1e-9
    assert filtered_metrics.accuracy >= poisoned_metrics.accuracy - 0.02

    text = (
        "Ablation (Section 7) — adversarial source filtering\n\n"
        f"injected adversaries:        {sorted(ADVERSARIES)}\n"
        f"sources removed by filter:   {report.removed_sources}\n"
        f"filter rounds:               {report.rounds}\n\n"
        f"{'':<22}{'accuracy':>10}{'fpr':>10}{'precision':>12}{'recall':>10}\n"
        f"{'LTM on poisoned data':<22}{poisoned_metrics.accuracy:>10.3f}{poisoned_metrics.false_positive_rate:>10.3f}"
        f"{poisoned_metrics.precision:>12.3f}{poisoned_metrics.recall:>10.3f}\n"
        f"{'LTM after filtering':<22}{filtered_metrics.accuracy:>10.3f}{filtered_metrics.false_positive_rate:>10.3f}"
        f"{filtered_metrics.precision:>12.3f}{filtered_metrics.recall:>10.3f}\n"
    )
    write_result(results_dir, "ablation_adversarial.txt", text)
    print("\n" + text)

"""E8 — paper Table 8: MAP sensitivity/specificity of the 12 movie sources.

Reads the source-quality table off the LTM fit of the movie dataset and
checks that it reproduces the qualitative structure of the paper's Table 8:
the two quality dimensions do not rank sources identically (they are genuinely
two-sided), the most complete feeds (imdb/netflix) sit near the top of the
sensitivity ranking, the conservative feed (fandango) sits near the bottom,
and amg's specificity is the lowest of the twelve.
"""

import numpy as np

from conftest import write_result

from repro.pipeline.report import format_quality_report
from repro.synth.movies import PAPER_MOVIE_SOURCES


def test_table8_movie_source_quality(benchmark, movie_comparison, results_dir):
    def read_quality():
        return movie_comparison.evaluation("LTM").result.source_quality

    quality = benchmark.pedantic(read_quality, rounds=5, iterations=1)
    names = list(quality.source_names)

    def sensitivity(name):
        return float(quality.sensitivity[names.index(name)])

    def specificity(name):
        return float(quality.specificity[names.index(name)])

    sens_ranking = [name for name, _, _ in quality.ranked_by_sensitivity()]

    # The generated feed uses the paper's 12 sources.
    assert set(names) <= set(PAPER_MOVIE_SOURCES)
    # imdb and netflix are the most complete feeds; fandango the least.
    assert sens_ranking.index("imdb") < sens_ranking.index("fandango")
    assert sens_ranking.index("netflix") < sens_ranking.index("fandango")
    assert "imdb" in sens_ranking[:4] or "netflix" in sens_ranking[:4]
    # amg has the weakest specificity of the twelve sources.
    amg_spec = specificity("amg")
    assert amg_spec <= min(specificity(n) for n in names if n != "amg") + 0.05
    # Sensitivity and specificity do not rank the sources identically: the two
    # quality dimensions carry independent information (the paper's argument).
    spec_ranking = [n for n, _ in sorted(
        ((n, specificity(n)) for n in names), key=lambda kv: -kv[1]
    )]
    assert sens_ranking != spec_ranking
    # Estimated sensitivity correlates with the generating sensitivity.
    generating = np.array([PAPER_MOVIE_SOURCES[n][0] for n in names])
    estimated = np.array([sensitivity(n) for n in names])
    assert np.corrcoef(generating, estimated)[0, 1] > 0.5

    text = (
        "Table 8 (reproduced) — source quality on the simulated movie data\n\n"
        + format_quality_report(quality)
        + "\n"
    )
    write_result(results_dir, "table8_source_quality.txt", text)
    print("\n" + text)

"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md's experiment index).  The simulated
datasets here are scaled-down versions of the paper's datasets so that the
whole harness runs in a few minutes on a laptop; set the environment variable
``REPRO_BENCH_SCALE=paper`` to use the paper's full dataset sizes instead
(slower by roughly an order of magnitude).

Expensive artefacts (the fitted method-comparison tables) are computed once
per session and shared by the Table 7 / Figure 2 / Figure 3 / Table 8
benchmarks.  Every benchmark also appends a human-readable rendition of its
reproduced table/figure to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.engine.registry import method_suite
from repro.evaluation.comparison import compare_methods
from repro.synth.books import BookAuthorConfig, BookAuthorSimulator
from repro.synth.movies import MovieDirectorConfig, MovieDirectorSimulator

RESULTS_DIR = Path(__file__).parent / "results"

PAPER_SCALE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "paper"
LTM_ITERATIONS = 100
SEED = 7


def _book_config() -> BookAuthorConfig:
    if PAPER_SCALE:
        return BookAuthorConfig.paper_scale(seed=17)
    return BookAuthorConfig(num_books=300, num_sellers=120, labelled_books=100, seed=17)


def _movie_config() -> MovieDirectorConfig:
    if PAPER_SCALE:
        return MovieDirectorConfig.paper_scale(seed=29)
    return MovieDirectorConfig(num_movies=1200, labelled_movies=100, seed=29)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def book_dataset():
    """The simulated book-author dataset (paper Section 6.1.1, first dataset)."""
    return BookAuthorSimulator(_book_config()).generate()


@pytest.fixture(scope="session")
def movie_dataset():
    """The simulated movie-director dataset (paper Section 6.1.1, second dataset)."""
    return MovieDirectorSimulator(_movie_config()).generate()


@pytest.fixture(scope="session")
def book_comparison(book_dataset):
    """All ten methods fitted and graded on the book dataset (shared by E2-E4)."""
    suite = method_suite(iterations=LTM_ITERATIONS, seed=SEED)
    return compare_methods(
        book_dataset,
        suite,
        include_incremental=True,
        incremental_kwargs={"iterations": LTM_ITERATIONS, "seed": SEED},
    )


@pytest.fixture(scope="session")
def movie_comparison(movie_dataset):
    """All ten methods fitted and graded on the movie dataset (shared by E2-E4, E8)."""
    suite = method_suite(iterations=LTM_ITERATIONS, seed=SEED)
    return compare_methods(
        movie_dataset,
        suite,
        include_incremental=True,
        incremental_kwargs={"iterations": LTM_ITERATIONS, "seed": SEED},
    )


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Write one experiment's rendered output under benchmarks/results/."""
    path = results_dir / name
    path.write_text(text, encoding="utf-8")

"""E10 — entity-sharded parallel speedup on the Fig-6 runtime workload.

Fits LTM on the movie dataset (the workload of the paper's runtime-linearity
study, Figure 6 / Table 9) twice: single-shard serial, and 4 entity shards on
the ``processes`` backend (:mod:`repro.parallel`).  Records both wall times
and the speedup into ``benchmarks/results/parallel_speedup.txt``.

The >=2x speedup assertion only applies when the machine actually has >=4
CPU cores — on fewer cores the 4-worker run measures scheduling overhead,
not parallelism, and the recorded numbers say so.
"""

import os
import time

import numpy as np

from conftest import SEED, write_result

from repro.engine import EngineConfig, ExecutionConfig, TruthEngine
from repro.io.sources import DatasetSource

ITERATIONS = 200
NUM_SHARDS = 4
#: Required speedup at 4 process workers when >= 4 cores are available.
MIN_SPEEDUP = 2.0


def _fit_seconds(engine: TruthEngine, source) -> float:
    start = time.perf_counter()
    engine.fit(source)
    return time.perf_counter() - start


def test_parallel_speedup_vs_serial(benchmark, movie_dataset, results_dir):
    source = DatasetSource(movie_dataset)
    cpus = os.cpu_count() or 1

    serial_engine = TruthEngine(
        EngineConfig(method="ltm", params={"iterations": ITERATIONS, "seed": SEED})
    )
    sharded_engine = TruthEngine(
        EngineConfig(
            method="ltm",
            params={"iterations": ITERATIONS, "seed": SEED},
            execution=ExecutionConfig(
                num_shards=NUM_SHARDS,
                backend="processes",
                max_workers=NUM_SHARDS,
            ),
        )
    )

    def measure():
        serial_seconds = _fit_seconds(serial_engine, source)
        parallel_seconds = _fit_seconds(sharded_engine, source)
        return serial_seconds, parallel_seconds

    serial_seconds, parallel_seconds = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = serial_seconds / parallel_seconds

    # Correctness of the parallel run, independent of timing: same facts,
    # finite probability scores, one merged quality table.
    serial_scores = serial_engine.predict_proba()
    parallel_scores = sharded_engine.predict_proba()
    assert parallel_scores.shape == serial_scores.shape
    assert np.isfinite(parallel_scores).all()
    assert sharded_engine.quality_report().num_sources == (
        serial_engine.quality_report().num_sources
    )
    # Sanity guard only (exact parity is pinned in tests/test_parallel.py):
    # two independent Gibbs chains disagree on borderline movie facts, so the
    # bound is loose.
    agreement = float(np.mean((parallel_scores >= 0.5) == (serial_scores >= 0.5)))
    assert agreement >= 0.9

    claims = movie_dataset.claims
    lines = [
        f"Parallel speedup — LTM ({ITERATIONS} iterations) on the Fig-6 movie workload",
        "",
        f"workload: {claims.num_entities} entities, {claims.num_facts} facts, "
        f"{claims.num_claims} claims",
        f"machine:  {cpus} CPU core(s)",
        "",
        f"{'configuration':<38} {'wall time (s)':>14}",
        f"{'serial (1 shard)':<38} {serial_seconds:>14.3f}",
        f"{f'{NUM_SHARDS} shards x processes backend':<38} {parallel_seconds:>14.3f}",
        "",
        f"speedup: {speedup:.2f}x   decision agreement: {agreement:.3f}",
    ]
    if cpus < NUM_SHARDS:
        lines.append(
            f"note: only {cpus} core(s) available — the {NUM_SHARDS}-worker run "
            f"measures pool overhead, not parallelism; the >= {MIN_SPEEDUP}x "
            f"assertion is skipped on this machine"
        )
    text = "\n".join(lines) + "\n"
    write_result(results_dir, "parallel_speedup.txt", text)
    print("\n" + text)

    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["cpus"] = cpus
    if cpus >= NUM_SHARDS:
        assert speedup >= MIN_SPEEDUP, (
            f"expected >= {MIN_SPEEDUP}x speedup at {NUM_SHARDS} process workers "
            f"on {cpus} cores, measured {speedup:.2f}x"
        )

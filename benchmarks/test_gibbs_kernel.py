"""Kernel A/B — scalar vs blocked Gibbs on the Figure-6 movie workload.

Times `CollapsedGibbsSampler` under both kernels on the same 100-iteration
chain and seed, requires bit-identical output, and pins the speedup to a
recorded floor.  Two numbers matter:

* the honest A/B ratio against the *current* scalar kernel (which this PR
  also made ~2x faster by sharing the blocked kernel's lookup tables) —
  asserted >= 5x;
* the per-claim cost against the fig6 slope recorded before the blocked
  kernel existed (6.503e-04 s/claim at 100 iterations) — the >= 10x
  headline, recorded in the results file.
"""

import time

import numpy as np

from conftest import SEED, write_result

from repro.core.gibbs import CollapsedGibbsSampler, GibbsConfig
from repro.core.priors import LTMPriors

ITERATIONS = 100
# Asserted floor for blocked vs the in-tree scalar kernel, same seed.
SPEEDUP_FLOOR = 5.0
# Fig-6 slope committed before this kernel existed (seconds per claim for a
# 100-iteration fit on this machine class) — the reference for the 10x claim.
PRE_BLOCKED_SECONDS_PER_CLAIM = 6.503e-04


def _time_kernel(claims, priors, kernel: str):
    config = GibbsConfig.paper_schedule(ITERATIONS, seed=SEED, kernel=kernel)
    sampler = CollapsedGibbsSampler(priors=priors, config=config)
    started = time.perf_counter()
    scores, counts, trace = sampler.run(claims)
    elapsed = time.perf_counter() - started
    return elapsed, scores, counts, trace


def test_blocked_kernel_speedup(benchmark, movie_dataset, results_dir):
    claims = movie_dataset.claims
    priors = LTMPriors.adaptive(claims)

    def study():
        # Scalar first, blocked second: if anything, cache warm-up favours the
        # baseline.
        scalar = _time_kernel(claims, priors, "scalar")
        blocked = _time_kernel(claims, priors, "blocked")
        return scalar, blocked

    scalar, blocked = benchmark.pedantic(study, rounds=1, iterations=1)
    scalar_time, scalar_scores, scalar_counts, scalar_trace = scalar
    blocked_time, blocked_scores, blocked_counts, blocked_trace = blocked

    # Exactness before speed: the blocked kernel must reproduce the scalar
    # chain bit for bit.
    assert np.array_equal(scalar_scores, blocked_scores)
    assert np.array_equal(scalar_counts.counts, blocked_counts.counts)
    assert scalar_trace.flips_per_iteration == blocked_trace.flips_per_iteration
    assert blocked_trace.kernel == "blocked" and blocked_trace.block_count >= 1

    speedup = scalar_time / blocked_time
    per_claim = blocked_time / claims.num_claims
    vs_reference = PRE_BLOCKED_SECONDS_PER_CLAIM / per_claim
    assert speedup >= SPEEDUP_FLOOR

    lines = [
        "Gibbs kernel A/B — scalar vs blocked on the Figure-6 movie workload "
        f"({ITERATIONS} iterations, {claims.num_claims} claims, "
        f"{claims.num_facts} facts, {claims.num_sources} sources)",
        "",
        f"{'kernel':<10} {'runtime (s)':>14} {'s/claim':>12}",
        f"{'scalar':<10} {scalar_time:>14.3f} {scalar_time / claims.num_claims:>12.3e}",
        f"{'blocked':<10} {blocked_time:>14.3f} {per_claim:>12.3e}",
        "",
        f"speedup blocked vs scalar: {speedup:.2f}x (asserted floor {SPEEDUP_FLOOR:.0f}x)",
        f"speedup vs pre-blocked fig6 slope ({PRE_BLOCKED_SECONDS_PER_CLAIM:.3e} s/claim): "
        f"{vs_reference:.2f}x",
        f"conflict-free blocks: {blocked_trace.block_count}",
        "scores, counts and per-sweep flips: identical",
    ]
    text = "\n".join(lines) + "\n"
    write_result(results_dir, "gibbs_kernel_speedup.txt", text)
    print("\n" + text)

    benchmark.extra_info["speedup_vs_scalar"] = speedup
    benchmark.extra_info["speedup_vs_pre_blocked_reference"] = vs_reference
    benchmark.extra_info["blocked_seconds_per_claim"] = per_claim

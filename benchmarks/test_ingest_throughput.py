"""E10 — Ingestion throughput: per-triple vs. vectorized bulk ingest.

The claim-construction rules of Definitions 2-3 admit two implementations
that produce byte-identical matrices:

* the **per-triple** reference path — ``RawDatabase.add`` per triple (schema
  validation, key index, coverage maps) followed by the row-at-a-time
  ``ClaimTableBuilder`` loops;
* the **bulk** path — :func:`repro.data.claim_builder.bulk_build_claim_matrix`,
  which factorizes the entity / attribute / source columns into dense codes
  and runs claim generation as numpy array passes.

This benchmark measures both at 100 000 triples on a conflict-heavy workload
(20 sources covering every entity, multi-valued attributes — the regime the
paper's movie feed lives in, where negative-claim generation dominates),
asserts the bulk path is at least 5x faster, and records triples/sec under
``benchmarks/results/``.

The **out-of-core row** (ISSUE 7) extends the same report: a 1M-triple
corpus is streamed from a generator into a :class:`~repro.store.ClaimStore`
(never materialised), then fitted through the engine's streaming LTMinc path
over a :class:`~repro.io.StoreSource` with ``retain_history=False`` — peak
traced memory of the fit loop must stay bounded by the batch size, orders of
magnitude under the corpus.
"""

from __future__ import annotations

import gc
import resource
import time
import tracemalloc

import numpy as np

from repro.data.claim_builder import ClaimTableBuilder, bulk_build_claim_matrix
from repro.data.raw import RawDatabase

from conftest import write_result

NUM_ENTITIES = 2_500
NUM_SOURCES = 20
ATTRS_PER_ENTITY = 10
ASSERTED_PER_SOURCE = 2
REPEATS = 3
MIN_SPEEDUP = 5.0

# Out-of-core workload: 100k entities x 10 triples = 1M triples.
OOC_ENTITIES = 100_000
OOC_TRIPLES_PER_ENTITY = 10
OOC_BATCH_ENTITIES = 10_000
OOC_BOOTSTRAP_ENTITIES = 1_000
OOC_PEAK_CAP_MB = 256.0


def _make_triples() -> list[tuple[str, str, str]]:
    """A seeded 100k-triple crawl: every source covers every entity."""
    rng = np.random.default_rng(1234)
    triples: list[tuple[str, str, str]] = []
    for e in range(NUM_ENTITIES):
        entity = f"entity_{e:05d}"
        for s in rng.choice(NUM_SOURCES, size=NUM_SOURCES, replace=False):
            source = f"source_{s:02d}"
            for a in rng.choice(ATTRS_PER_ENTITY, size=ASSERTED_PER_SOURCE, replace=False):
                triples.append((entity, f"value_{e:05d}_{a}", source))
    return triples


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    """Best wall-clock of ``repeats`` runs (GC collected and paused per run)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        best = min(best, elapsed)
    return best, result


def test_ingest_throughput(results_dir):
    triples = _make_triples()
    num_triples = len(triples)
    assert num_triples == 100_000

    per_triple_s, seq_matrix = _best_of(
        lambda: ClaimTableBuilder(RawDatabase(triples, strict=False)).build()
    )
    bulk_s, bulk_matrix = _best_of(lambda: bulk_build_claim_matrix(triples))

    # The two paths must agree exactly — speed must not change semantics.
    assert seq_matrix.source_names == bulk_matrix.source_names
    assert np.array_equal(seq_matrix.claim_fact, bulk_matrix.claim_fact)
    assert np.array_equal(seq_matrix.claim_source, bulk_matrix.claim_source)
    assert np.array_equal(seq_matrix.claim_obs, bulk_matrix.claim_obs)

    speedup = per_triple_s / bulk_s
    per_triple_tps = num_triples / per_triple_s
    bulk_tps = num_triples / bulk_s

    lines = [
        "E10  Ingestion throughput: per-triple vs. vectorized bulk ingest",
        "",
        f"workload: {num_triples} triples, {seq_matrix.num_entities} entities, "
        f"{seq_matrix.num_sources} sources, {seq_matrix.num_facts} facts, "
        f"{seq_matrix.num_claims} claims "
        f"({seq_matrix.num_negative_claims} negative)",
        f"timing:   best of {REPEATS} runs each",
        "",
        f"{'path':12s}  {'seconds':>9s}  {'triples/sec':>12s}",
        f"{'-' * 12}  {'-' * 9}  {'-' * 12}",
        f"{'per-triple':12s}  {per_triple_s:9.3f}  {per_triple_tps:12,.0f}",
        f"{'bulk':12s}  {bulk_s:9.3f}  {bulk_tps:12,.0f}",
        "",
        f"speedup: {speedup:.1f}x (required >= {MIN_SPEEDUP:.0f}x)",
        "",
    ]
    write_result(results_dir, "ingest_throughput.txt", "\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"bulk ingest only {speedup:.1f}x faster than per-triple "
        f"({per_triple_s:.3f}s vs {bulk_s:.3f}s)"
    )


def _ooc_stream():
    """A 1M-triple generator: 5 reliable and 5 unreliable sources per entity."""
    for e in range(OOC_ENTITIES):
        entity = f"entity_{e:06d}"
        for s in range(5):
            yield (entity, f"true_{e}", f"good_{s}")
        for s in range(5):
            yield (entity, f"junk_{e}", f"bad_{s}")


def test_out_of_core_store_throughput(results_dir, tmp_path):
    """1M triples: generator -> ClaimStore -> streaming LTMinc fit, bounded RAM."""
    from repro.engine import EngineConfig, TruthEngine
    from repro.io import StoreSource
    from repro.store import ClaimStore

    path = tmp_path / "claims.db"
    num_triples = OOC_ENTITIES * OOC_TRIPLES_PER_ENTITY

    start = time.perf_counter()
    with ClaimStore(path) as store:
        appended = store.append(_ooc_stream())
    ingest_s = time.perf_counter() - start
    assert appended == num_triples

    # Bootstrap source quality on a small prefix (full Gibbs fit), then
    # stream the whole corpus through the closed-form LTMinc scorer.
    # retain_history=False: the corpus's history IS the store.
    engine = TruthEngine(
        EngineConfig(
            method="ltm",
            params={"iterations": 10, "seed": 7},
            retrain_every=0,
            retain_history=False,
        )
    )
    with StoreSource(path) as source:
        bootstrap = source.entity_triples(
            [f"entity_{e:06d}" for e in range(OOC_BOOTSTRAP_ENTITIES)]
        )
        engine.fit(bootstrap)
        history_after_bootstrap = len(engine._history)

        tracemalloc.start()
        start = time.perf_counter()
        num_batches = 0
        for batch in source.iter_batches(OOC_BATCH_ENTITIES, by_entity=True):
            engine.partial_fit(batch)
            num_batches += 1
        fit_s = time.perf_counter() - start
        _, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()

    # The engine must not have accumulated the stream: its history is still
    # just the bootstrap window, and the fit loop's peak memory is batch-
    # sized, not corpus-sized.
    assert len(engine._history) == history_after_bootstrap
    assert len(engine.fact_scores) == 2 * OOC_ENTITIES
    peak_mb = peak_bytes / 2**20
    assert peak_mb < OOC_PEAK_CAP_MB, (
        f"streaming fit peaked at {peak_mb:.0f} MiB; "
        f"out-of-core bound is {OOC_PEAK_CAP_MB:.0f} MiB"
    )

    ingest_tps = num_triples / ingest_s
    fit_tps = num_triples / fit_s
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    store_mb = path.stat().st_size / 2**20

    lines = [
        "",
        "E10b  Out-of-core ingest + streaming fit (ISSUE 7)",
        "",
        f"workload: {num_triples:,} triples, {OOC_ENTITIES:,} entities, "
        f"10 sources; store file {store_mb:.0f} MiB",
        f"stream:   {OOC_BATCH_ENTITIES:,} entities/batch "
        f"({num_batches} batches), LTMinc scoring, retain_history=False",
        "",
        f"{'stage':24s}  {'seconds':>9s}  {'triples/sec':>12s}",
        f"{'-' * 24}  {'-' * 9}  {'-' * 12}",
        f"{'generator -> ClaimStore':24s}  {ingest_s:9.3f}  {ingest_tps:12,.0f}",
        f"{'StoreSource -> LTMinc':24s}  {fit_s:9.3f}  {fit_tps:12,.0f}",
        "",
        f"peak traced memory of the fit loop: {peak_mb:.1f} MiB "
        f"(bound {OOC_PEAK_CAP_MB:.0f} MiB); process peak RSS {rss_mb:.0f} MiB",
        "",
    ]
    report_path = results_dir / "ingest_throughput.txt"
    existing = report_path.read_text(encoding="utf-8") if report_path.exists() else ""
    write_result(results_dir, "ingest_throughput.txt", existing + "\n".join(lines))

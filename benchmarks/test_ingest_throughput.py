"""E10 — Ingestion throughput: per-triple vs. vectorized bulk ingest.

The claim-construction rules of Definitions 2-3 admit two implementations
that produce byte-identical matrices:

* the **per-triple** reference path — ``RawDatabase.add`` per triple (schema
  validation, key index, coverage maps) followed by the row-at-a-time
  ``ClaimTableBuilder`` loops;
* the **bulk** path — :func:`repro.data.claim_builder.bulk_build_claim_matrix`,
  which factorizes the entity / attribute / source columns into dense codes
  and runs claim generation as numpy array passes.

This benchmark measures both at 100 000 triples on a conflict-heavy workload
(20 sources covering every entity, multi-valued attributes — the regime the
paper's movie feed lives in, where negative-claim generation dominates),
asserts the bulk path is at least 5x faster, and records triples/sec under
``benchmarks/results/``.
"""

from __future__ import annotations

import gc
import time

import numpy as np

from repro.data.claim_builder import ClaimTableBuilder, bulk_build_claim_matrix
from repro.data.raw import RawDatabase

from conftest import write_result

NUM_ENTITIES = 2_500
NUM_SOURCES = 20
ATTRS_PER_ENTITY = 10
ASSERTED_PER_SOURCE = 2
REPEATS = 3
MIN_SPEEDUP = 5.0


def _make_triples() -> list[tuple[str, str, str]]:
    """A seeded 100k-triple crawl: every source covers every entity."""
    rng = np.random.default_rng(1234)
    triples: list[tuple[str, str, str]] = []
    for e in range(NUM_ENTITIES):
        entity = f"entity_{e:05d}"
        for s in rng.choice(NUM_SOURCES, size=NUM_SOURCES, replace=False):
            source = f"source_{s:02d}"
            for a in rng.choice(ATTRS_PER_ENTITY, size=ASSERTED_PER_SOURCE, replace=False):
                triples.append((entity, f"value_{e:05d}_{a}", source))
    return triples


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    """Best wall-clock of ``repeats`` runs (GC collected and paused per run)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        best = min(best, elapsed)
    return best, result


def test_ingest_throughput(results_dir):
    triples = _make_triples()
    num_triples = len(triples)
    assert num_triples == 100_000

    per_triple_s, seq_matrix = _best_of(
        lambda: ClaimTableBuilder(RawDatabase(triples, strict=False)).build()
    )
    bulk_s, bulk_matrix = _best_of(lambda: bulk_build_claim_matrix(triples))

    # The two paths must agree exactly — speed must not change semantics.
    assert seq_matrix.source_names == bulk_matrix.source_names
    assert np.array_equal(seq_matrix.claim_fact, bulk_matrix.claim_fact)
    assert np.array_equal(seq_matrix.claim_source, bulk_matrix.claim_source)
    assert np.array_equal(seq_matrix.claim_obs, bulk_matrix.claim_obs)

    speedup = per_triple_s / bulk_s
    per_triple_tps = num_triples / per_triple_s
    bulk_tps = num_triples / bulk_s

    lines = [
        "E10  Ingestion throughput: per-triple vs. vectorized bulk ingest",
        "",
        f"workload: {num_triples} triples, {seq_matrix.num_entities} entities, "
        f"{seq_matrix.num_sources} sources, {seq_matrix.num_facts} facts, "
        f"{seq_matrix.num_claims} claims "
        f"({seq_matrix.num_negative_claims} negative)",
        f"timing:   best of {REPEATS} runs each",
        "",
        f"{'path':12s}  {'seconds':>9s}  {'triples/sec':>12s}",
        f"{'-' * 12}  {'-' * 9}  {'-' * 12}",
        f"{'per-triple':12s}  {per_triple_s:9.3f}  {per_triple_tps:12,.0f}",
        f"{'bulk':12s}  {bulk_s:9.3f}  {bulk_tps:12,.0f}",
        "",
        f"speedup: {speedup:.1f}x (required >= {MIN_SPEEDUP:.0f}x)",
        "",
    ]
    write_result(results_dir, "ingest_throughput.txt", "\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"bulk ingest only {speedup:.1f}x faster than per-triple "
        f"({per_triple_s:.3f}s vs {bulk_s:.3f}s)"
    )

"""E12 (ablation) — Section 7, real-valued loss.

For a numeric attribute (e.g. a movie's running time) the Bernoulli
observation model treats "off by one minute" the same as "off by an hour".
This ablation compares the Gaussian truth model against two 0/1 strategies —
taking the majority-voted exact value and taking an unweighted mean — on a
synthetic numeric-attribute workload with sources of very different error
scales.
"""

import numpy as np

from conftest import SEED, write_result

from repro.extensions.gaussian_ltm import GaussianClaim, GaussianTruthModel

NUM_ENTITIES = 300
SOURCE_SIGMAS = {"precise_a": 0.5, "precise_b": 1.0, "sloppy_a": 6.0, "sloppy_b": 10.0, "broken": 25.0}


def _generate(seed: int):
    rng = np.random.default_rng(seed)
    true_values = {f"movie{i}": float(rng.uniform(60, 200)) for i in range(NUM_ENTITIES)}
    claims = []
    for entity, value in true_values.items():
        for source, sigma in SOURCE_SIGMAS.items():
            claims.append(GaussianClaim(entity, round(value + rng.normal(0, sigma), 1), source))
    return true_values, claims


def _mean_abs_error(estimates, true_values):
    return float(np.mean([abs(estimates[e] - v) for e, v in true_values.items()]))


def test_ablation_gaussian_vs_binary_loss(benchmark, results_dir):
    true_values, claims = _generate(SEED)

    def fit_gaussian():
        return GaussianTruthModel(iterations=30).fit(claims)

    result = benchmark.pedantic(fit_gaussian, rounds=1, iterations=1)

    gaussian_error = _mean_abs_error(result.truth_estimates, true_values)

    # Baseline 1: unweighted mean of the claimed values.
    by_entity: dict[str, list[float]] = {}
    for claim in claims:
        by_entity.setdefault(claim.entity, []).append(claim.value)
    mean_error = _mean_abs_error({e: float(np.mean(vs)) for e, vs in by_entity.items()}, true_values)

    # Baseline 2: 0/1-loss voting on exact values (ties broken by first seen).
    def vote(values):
        unique, counts = np.unique(np.asarray(values), return_counts=True)
        return float(unique[np.argmax(counts)])

    voting_error = _mean_abs_error({e: vote(vs) for e, vs in by_entity.items()}, true_values)

    # The Gaussian model must beat both 0/1-style strategies clearly.
    assert gaussian_error < mean_error
    assert gaussian_error < voting_error
    assert gaussian_error < 1.5
    # And its source-variance estimates must rank the broken feed last.
    assert result.source_reliability_ranking()[-1][0] == "broken"

    text = (
        "Ablation (Section 7) — real-valued loss for numeric attributes\n\n"
        f"{'strategy':<34}{'mean abs error':>16}\n"
        f"{'Gaussian truth model':<34}{gaussian_error:>16.3f}\n"
        f"{'unweighted mean of claims':<34}{mean_error:>16.3f}\n"
        f"{'exact-value majority vote':<34}{voting_error:>16.3f}\n\n"
        "inferred source variances: "
        + ", ".join(f"{name}={var:.2f}" for name, var in result.source_reliability_ranking())
        + "\n"
    )
    write_result(results_dir, "ablation_gaussian.txt", text)
    print("\n" + text)

"""E6 — paper Figure 5: convergence of LTM on the movie data.

Repeats LTM fits with increasing iteration budgets (using the paper's burn-in
and thinning schedule for each budget), recording accuracy mean and 95%
confidence interval over the repeats.  The paper's findings to reproduce:
accuracy is already reasonable after a handful of iterations, reaches its
plateau by roughly 50 iterations, and additional iterations neither help nor
hurt (variance shrinks).
"""

from conftest import SEED, write_result

from repro.core.diagnostics import mean_and_confidence_interval
from repro.core.model import LatentTruthModel
from repro.evaluation.metrics import evaluate_scores

BUDGETS = (7, 10, 20, 50, 100, 200)
REPEATS = 5


def test_fig5_convergence(benchmark, movie_dataset, results_dir):
    claims = movie_dataset.claims
    labels = movie_dataset.labels

    def accuracy_at(iterations: int, repeat: int) -> float:
        model = LatentTruthModel(iterations=iterations, seed=SEED + repeat)
        return evaluate_scores(model.fit(claims), labels).accuracy

    def run_study():
        study = {}
        for budget in BUDGETS:
            accuracies = [accuracy_at(budget, r) for r in range(REPEATS)]
            study[budget] = mean_and_confidence_interval(accuracies)
        return study

    study = benchmark.pedantic(run_study, rounds=1, iterations=1)

    means = {budget: mean for budget, (mean, _, _) in study.items()}
    # Even 7 iterations gives usable accuracy.
    assert means[7] > 0.8
    # By 50 iterations accuracy has reached its plateau (within one point of the best).
    best = max(means.values())
    assert means[50] >= best - 0.02
    assert means[200] >= best - 0.02
    # Confidence intervals shrink (or at least do not grow) as iterations increase.
    width_small = study[7][2] - study[7][1]
    width_large = study[200][2] - study[200][1]
    assert width_large <= width_small + 0.02

    lines = ["Figure 5 (reproduced) — convergence of LTM on the movie data "
             f"({REPEATS} repeats, 95% CI)", ""]
    lines.append(f"{'iterations':>12} {'mean accuracy':>15} {'CI low':>10} {'CI high':>10}")
    for budget, (mean, low, high) in study.items():
        lines.append(f"{budget:>12d} {mean:>15.3f} {low:>10.3f} {high:>10.3f}")
    text = "\n".join(lines) + "\n"
    write_result(results_dir, "fig5_convergence.txt", text)
    print("\n" + text)

    benchmark.extra_info["mean_accuracy_by_budget"] = means

"""E1 — paper Table 6: source-quality measures of the worked example.

Recomputes the confusion matrices and derived measures of the three movie
sources in the paper's running example (Tables 1-5) and checks they match the
values printed in Table 6 exactly.
"""

import pytest

from repro.data.claim_builder import build_dataset
from repro.evaluation.confusion import source_confusion_matrices

PAPER_EXAMPLE = [
    ("Harry Potter", "Daniel Radcliffe", "IMDB"),
    ("Harry Potter", "Emma Watson", "IMDB"),
    ("Harry Potter", "Rupert Grint", "IMDB"),
    ("Harry Potter", "Daniel Radcliffe", "Netflix"),
    ("Harry Potter", "Daniel Radcliffe", "BadSource.com"),
    ("Harry Potter", "Emma Watson", "BadSource.com"),
    ("Harry Potter", "Johnny Depp", "BadSource.com"),
    ("Pirates 4", "Johnny Depp", "Hulu.com"),
]
PAPER_TRUTH = {
    ("Harry Potter", "Daniel Radcliffe"): True,
    ("Harry Potter", "Emma Watson"): True,
    ("Harry Potter", "Rupert Grint"): True,
    ("Harry Potter", "Johnny Depp"): False,
    ("Pirates 4", "Johnny Depp"): True,
}

# Table 6 of the paper: measure -> (IMDB, Netflix, BadSource.com).
PAPER_TABLE6 = {
    "TP": (3, 1, 2),
    "FP": (0, 0, 1),
    "FN": (0, 2, 1),
    "TN": (1, 1, 0),
    "precision": (1.0, 1.0, 2 / 3),
    "accuracy": (1.0, 0.5, 0.5),
    "sensitivity": (1.0, 1 / 3, 2 / 3),
    "specificity": (1.0, 1.0, 0.0),
}


def _compute_table6():
    dataset = build_dataset(PAPER_EXAMPLE, truth=PAPER_TRUTH, name="paper-example")
    return source_confusion_matrices(dataset.claims, dataset.labels)


def test_table6_example_source_quality(benchmark, results_dir):
    matrices = benchmark.pedantic(_compute_table6, rounds=5, iterations=1)

    lines = ["Table 6 (reproduced) — quality of sources in the worked example", ""]
    header = f"{'Measure':<12}{'IMDB':>10}{'Netflix':>10}{'BadSource':>12}"
    lines.append(header)
    for measure, expected in PAPER_TABLE6.items():
        observed = tuple(
            getattr(matrices[name], {
                "TP": "true_positives", "FP": "false_positives",
                "FN": "false_negatives", "TN": "true_negatives",
            }.get(measure, measure))
            for name in ("IMDB", "Netflix", "BadSource.com")
        )
        lines.append(f"{measure:<12}{observed[0]:>10.3f}{observed[1]:>10.3f}{observed[2]:>12.3f}")
        for obs, exp in zip(observed, expected):
            assert obs == pytest.approx(exp), f"{measure} mismatch: {observed} vs {expected}"

    text = "\n".join(lines) + "\n"
    from conftest import write_result

    write_result(results_dir, "table6_example_quality.txt", text)
    print("\n" + text)

"""E9 — paper Table 9: runtimes of every method on growing movie subsets.

Times each method (100 iterations for the iterative ones, as in the paper) on
nested subsets of the movie data.  The paper's findings to reproduce: every
method scales roughly linearly with data size; Voting and LTMinc are the
cheapest; LTM and 3-Estimates are the most expensive iterative methods but
stay within a small constant factor of the rest.

The paper's LTM corresponds to the scalar reference kernel; the blocked
kernel (the library default) runs the identical chain several times faster,
so the table carries both rows.
"""

from conftest import LTM_ITERATIONS, SEED, write_result

from repro.baselines import (
    AvgLog,
    HubAuthority,
    Investment,
    PooledInvestment,
    ThreeEstimates,
    TruthFinder,
    Voting,
)
from repro.core.incremental import IncrementalLTM
from repro.core.model import LatentTruthModel
from repro.evaluation.scaling import entity_subsets, linear_fit

FRACTIONS = (0.33, 0.66, 1.0)


def test_table9_method_runtimes(benchmark, movie_dataset, results_dir):
    subsets = entity_subsets(movie_dataset.claims, fractions=FRACTIONS, seed=SEED)

    # LTMinc needs a quality table learned beforehand (it is a pure predictor).
    ltm_for_quality = LatentTruthModel(iterations=LTM_ITERATIONS, seed=SEED)
    quality = ltm_for_quality.fit(subsets[0]).source_quality

    def method_factories():
        return {
            "Voting": lambda: Voting(),
            "LTMinc": lambda: IncrementalLTM(quality),
            "HubAuthority": lambda: HubAuthority(),
            "AvgLog": lambda: AvgLog(),
            "PooledInvestment": lambda: PooledInvestment(),
            "TruthFinder": lambda: TruthFinder(),
            "Investment": lambda: Investment(),
            "3-Estimates": lambda: ThreeEstimates(),
            "LTM": lambda: LatentTruthModel(
                iterations=LTM_ITERATIONS, seed=SEED, kernel="scalar"
            ),
            "LTM (blocked)": lambda: LatentTruthModel(
                iterations=LTM_ITERATIONS, seed=SEED, kernel="blocked"
            ),
        }

    def run_study():
        table = {}
        for name, factory in method_factories().items():
            runtimes = []
            for subset in subsets:
                result = factory().fit(subset)
                runtimes.append(result.runtime_seconds)
            table[name] = runtimes
        return table

    runtimes = benchmark.pedantic(run_study, rounds=1, iterations=1)
    claims = [subset.num_claims for subset in subsets]

    # Voting and LTMinc are the cheapest methods on the full dataset.
    full = {name: times[-1] for name, times in runtimes.items()}
    cheapest_two = sorted(full, key=full.get)[:3]
    assert "Voting" in cheapest_two
    assert "LTMinc" in cheapest_two
    # Scalar LTM is the most expensive method (the paper reports the same),
    # but it stays practical — a full fit finishes within a minute at this
    # scale — and the blocked kernel runs the identical chain strictly faster.
    assert full["LTM"] == max(full.values())
    assert full["LTM"] < 60.0
    assert full["LTM (blocked)"] < full["LTM"]
    # Every iterative method grows with data size (roughly linear).
    for name, times in runtimes.items():
        if name in ("Voting", "LTMinc"):
            continue
        fit = linear_fit(claims, times)
        assert fit.slope >= 0

    lines = ["Table 9 (reproduced) — runtimes (seconds) vs subset size", ""]
    header = f"{'method':<18}" + "".join(f"{c:>12d}" for c in claims)
    lines.append(f"{'':<18}" + "".join(f"{'claims':>12}" for _ in claims))
    lines.append(header)
    for name, times in sorted(runtimes.items(), key=lambda kv: kv[1][-1]):
        lines.append(f"{name:<18}" + "".join(f"{t:>12.3f}" for t in times))
    text = "\n".join(lines) + "\n"
    write_result(results_dir, "table9_runtimes.txt", text)
    print("\n" + text)

    benchmark.extra_info["full_dataset_runtimes"] = full

"""E7 — paper Figure 6: LTM's runtime is linear in the number of claims.

Times 100-iteration LTM fits on nested entity subsets of the movie data and
regresses runtime on the number of claims.  The paper reports an R-squared of
0.9913 for the linear fit; the exact slope depends on the machine, but the
relationship must remain strongly linear here too.
"""

from conftest import SEED, write_result

from repro.core.model import LatentTruthModel
from repro.evaluation.scaling import entity_subsets, runtime_scaling_study

FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)
ITERATIONS = 100


def test_fig6_runtime_linear_in_claims(benchmark, movie_dataset, results_dir):
    subsets = entity_subsets(movie_dataset.claims, fractions=FRACTIONS, seed=SEED)

    def study():
        return runtime_scaling_study(
            lambda: LatentTruthModel(iterations=ITERATIONS, seed=SEED),
            subsets,
        )

    measurements, fit = benchmark.pedantic(study, rounds=1, iterations=1)

    # Strong linearity and increasing runtimes with claim count.
    assert fit.r_squared > 0.95
    assert fit.slope > 0
    runtimes = [m["runtime_seconds"] for m in measurements]
    claims = [m["claims"] for m in measurements]
    assert runtimes == sorted(runtimes) or fit.r_squared > 0.98
    assert claims == sorted(claims)

    lines = ["Figure 6 (reproduced) — LTM runtime vs number of claims "
             f"({ITERATIONS} iterations per fit)", ""]
    lines.append(f"{'claims':>10} {'entities':>10} {'runtime (s)':>14}")
    for m in measurements:
        lines.append(f"{int(m['claims']):>10d} {int(m['entities']):>10d} {m['runtime_seconds']:>14.3f}")
    lines.append("")
    lines.append(
        f"linear fit: runtime = {fit.slope:.3e} * claims + {fit.intercept:.3e}   R^2 = {fit.r_squared:.4f}"
    )
    text = "\n".join(lines) + "\n"
    write_result(results_dir, "fig6_runtime_linearity.txt", text)
    print("\n" + text)

    benchmark.extra_info["r_squared"] = fit.r_squared
    benchmark.extra_info["slope_seconds_per_claim"] = fit.slope

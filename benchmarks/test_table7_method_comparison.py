"""E2 — paper Table 7: inference quality of every method at threshold 0.5.

Fits LTM, LTMinc, LTMpos and the seven baselines on the simulated book and
movie datasets, grades them on the labelled entities, and checks the paper's
qualitative findings: LTM/LTMinc win on accuracy and F1, 3-Estimates and
Voting follow, the positive-claim-only methods collapse to all-true, and the
propagation methods are over-conservative.

The benchmark timing wraps one full LTM fit on the book dataset (the dominant
cost of the experiment).
"""

from conftest import LTM_ITERATIONS, SEED, write_result

from repro.core.model import LatentTruthModel


def _render(table) -> str:
    lines = [f"Table 7 (reproduced) — dataset: {table.dataset_name}", ""]
    lines.append(table.format(metrics=("precision", "recall", "fpr", "accuracy", "f1")))
    lines.append("")
    lines.append("AUC: " + ", ".join(f"{n}={v:.3f}" for n, v in table.ranked_by("auc")))
    return "\n".join(lines) + "\n"


def _check_shape(table) -> None:
    # LTM and LTMinc lead on accuracy.
    ranked = [name for name, _ in table.ranked_by("accuracy")]
    assert ranked[0] in {"LTM", "LTMinc"}
    ltm_accuracy = table.metric("LTM", "accuracy")
    assert ltm_accuracy > table.metric("Voting", "accuracy")
    assert ltm_accuracy > table.metric("3-Estimates", "accuracy")
    assert abs(ltm_accuracy - table.metric("LTMinc", "accuracy")) < 0.1
    # Optimistic methods: recall 1, FPR ~1.
    for method in ("TruthFinder", "Investment", "LTMpos"):
        assert table.metric(method, "recall") > 0.95
        assert table.metric(method, "fpr") > 0.9
    # Conservative methods: low recall (they accept only the strongest facts).
    # Their precision is usually near-perfect, but with very few accepted facts
    # it is a noisy statistic, so the bound is kept loose.
    for method in ("HubAuthority", "AvgLog", "PooledInvestment"):
        assert table.metric(method, "precision") > 0.6
        assert table.metric(method, "recall") < 0.7


def test_table7_book_and_movie_comparison(benchmark, book_dataset, movie_dataset,
                                           book_comparison, movie_comparison, results_dir):
    # Time the dominant kernel: a full LTM fit on the book claim matrix.
    benchmark.pedantic(
        lambda: LatentTruthModel(iterations=LTM_ITERATIONS, seed=SEED).fit(book_dataset.claims),
        rounds=1,
        iterations=1,
    )

    _check_shape(book_comparison)
    _check_shape(movie_comparison)

    text = _render(book_comparison) + "\n" + _render(movie_comparison)
    write_result(results_dir, "table7_method_comparison.txt", text)
    print("\n" + text)

    benchmark.extra_info["book_ltm_accuracy"] = book_comparison.metric("LTM", "accuracy")
    benchmark.extra_info["movie_ltm_accuracy"] = movie_comparison.metric("LTM", "accuracy")
    benchmark.extra_info["book_voting_accuracy"] = book_comparison.metric("Voting", "accuracy")
    benchmark.extra_info["movie_voting_accuracy"] = movie_comparison.metric("Voting", "accuracy")

"""E3 — paper Figure 2: accuracy versus decision threshold on both datasets.

Sweeps the decision threshold for every fitted method and verifies the shape
the paper reports: LTM is stable across the whole 0.2-0.9 range, the
conservative methods (HubAuthority/AvgLog/PooledInvestment) only peak at very
low thresholds, and the optimistic methods (TruthFinder/Investment/LTMpos)
stay degenerate even at high thresholds.
"""

import numpy as np

from conftest import write_result

from repro.evaluation.threshold import threshold_sweep

THRESHOLDS = [round(t, 2) for t in np.linspace(0.05, 0.95, 19)]


def _curves(table, dataset):
    curves = {}
    for evaluation in table.evaluations:
        if evaluation.method_name == "LTMinc" or evaluation.result is None:
            continue
        sweep = threshold_sweep(evaluation.result, dataset.labels, thresholds=THRESHOLDS)
        curves[evaluation.method_name] = {t: m.accuracy for t, m in sweep.items()}
    return curves


def _render(name, curves) -> str:
    lines = [f"Figure 2 (reproduced) — accuracy vs threshold, dataset: {name}", ""]
    header = "threshold  " + "  ".join(f"{m:>12s}" for m in curves)
    lines.append(header)
    for t in THRESHOLDS:
        row = f"{t:>9.2f}  " + "  ".join(f"{curves[m][t]:>12.3f}" for m in curves)
        lines.append(row)
    return "\n".join(lines) + "\n"


def test_fig2_threshold_stability(benchmark, book_dataset, movie_dataset,
                                  book_comparison, movie_comparison, results_dir):
    book_curves = benchmark.pedantic(
        lambda: _curves(book_comparison, book_dataset), rounds=1, iterations=1
    )
    movie_curves = _curves(movie_comparison, movie_dataset)

    for curves in (book_curves, movie_curves):
        # LTM is stable: its accuracy varies little between thresholds 0.2 and 0.8.
        ltm = [curves["LTM"][t] for t in THRESHOLDS if 0.2 <= t <= 0.8]
        assert max(ltm) - min(ltm) < 0.15
        # Conservative methods lose accuracy as the threshold rises past 0.5.
        for method in ("AvgLog", "PooledInvestment"):
            assert curves[method][0.1] >= curves[method][0.75] - 1e-9
        # Optimistic methods do not recover even at a 0.9 threshold.
        book_best_ltm = max(curves["LTM"].values())
        assert curves["TruthFinder"][0.9] <= book_best_ltm + 1e-9

    # LTM at 0.5 is at least close to its own optimum (within 5 accuracy points).
    for curves in (book_curves, movie_curves):
        assert curves["LTM"][0.5] >= max(curves["LTM"].values()) - 0.05

    text = _render(book_comparison.dataset_name, book_curves) + "\n" + _render(
        movie_comparison.dataset_name, movie_curves
    )
    write_result(results_dir, "fig2_threshold_curves.txt", text)
    print("\n" + text)

"""E12 — telemetry overhead: the disabled path costs <2% of a Figure-6 fit.

Telemetry must be free when off.  The disabled path a fit pays is a handful
of no-op primitives: one ``fit`` span through the noop tracer, a few
``get_tracer()`` resolutions, one ``tracer.enabled`` guard per Gibbs sweep
and the always-on metric observations at fit completion.  This benchmark
micro-times each primitive, scales it by its per-fit call count on the
Figure-6 movie workload (100-iteration LTM), and asserts the modelled
disabled-path overhead stays under 2% of the measured fit time.  An
enabled-vs-disabled A/B timing of the same fit is recorded alongside for
reference.
"""

from __future__ import annotations

import time
import timeit

from conftest import SEED, write_result

from repro import obs
from repro.engine import TruthEngine
from repro.obs import NOOP_TRACER
from repro.obs.metrics import EngineMetrics, MetricsRegistry

ITERATIONS = 100
OVERHEAD_BUDGET = 0.02


def _timed_fit(claims, telemetry: bool) -> float:
    obs.reset()
    if telemetry:
        obs.configure()
    engine = TruthEngine(method="ltm", iterations=ITERATIONS, seed=SEED)
    started = time.perf_counter()
    engine.fit(claims)
    elapsed = time.perf_counter() - started
    obs.reset()
    return elapsed


def _per_call(stmt, number: int = 20000) -> float:
    return timeit.timeit(stmt, number=number) / number


def test_disabled_telemetry_overhead_under_budget(benchmark, movie_dataset, results_dir):
    claims = movie_dataset.claims

    def measure():
        _timed_fit(claims, telemetry=False)  # warm-up: JIT-free but cache/alloc warm
        disabled = _timed_fit(claims, telemetry=False)
        enabled = _timed_fit(claims, telemetry=True)
        return disabled, enabled

    disabled_s, enabled_s = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Micro-costs of every primitive the disabled path touches.
    def noop_span():
        with NOOP_TRACER.span("fit", method="ltm", backend="serial"):
            pass

    registry = MetricsRegistry()
    metrics = EngineMetrics(registry)
    span_cost = _per_call(noop_span)
    get_tracer_cost = _per_call(obs.get_tracer)
    guard_cost = _per_call(lambda: NOOP_TRACER.enabled)
    counter_cost = _per_call(lambda: metrics.fits_total.inc(method="ltm", mode="batch"))
    histogram_cost = _per_call(
        lambda: metrics.fit_seconds.observe(0.01, method="ltm", backend="serial")
    )

    # Per-fit call counts on the serial path: one fit span, ~4 tracer
    # resolutions (facade, sampler, metrics helper, solver), one enabled
    # guard per Gibbs sweep, and the fit-completion metric writes
    # (2 counters + 3 histogram observations + span attribute no-ops).
    modelled = (
        1 * span_cost
        + 4 * get_tracer_cost
        + ITERATIONS * guard_cost
        + 2 * counter_cost
        + 3 * histogram_cost
    )
    overhead_fraction = modelled / disabled_s
    ab_delta = (enabled_s - disabled_s) / disabled_s

    assert overhead_fraction < OVERHEAD_BUDGET

    lines = [
        "Telemetry overhead — 100-iteration LTM fit on the Figure-6 movie workload",
        "",
        f"fit time, telemetry disabled: {disabled_s:.3f} s",
        f"fit time, telemetry enabled:  {enabled_s:.3f} s  "
        f"(A/B delta {100 * ab_delta:+.2f}%)",
        "",
        "disabled-path primitives (micro-timed):",
        f"  noop span enter/exit:   {1e9 * span_cost:>8.1f} ns  x 1 per fit",
        f"  get_tracer():           {1e9 * get_tracer_cost:>8.1f} ns  x 4 per fit",
        f"  tracer.enabled guard:   {1e9 * guard_cost:>8.1f} ns  x {ITERATIONS} per fit",
        f"  counter inc:            {1e9 * counter_cost:>8.1f} ns  x 2 per fit",
        f"  histogram observe:      {1e9 * histogram_cost:>8.1f} ns  x 3 per fit",
        "",
        f"modelled disabled-path cost: {1e6 * modelled:.1f} us per fit "
        f"= {100 * overhead_fraction:.4f}% of fit time (budget {100 * OVERHEAD_BUDGET:.0f}%)",
    ]
    text = "\n".join(lines) + "\n"
    write_result(results_dir, "obs_overhead.txt", text)
    print("\n" + text)

    benchmark.extra_info["overhead_fraction"] = overhead_fraction
    benchmark.extra_info["ab_delta"] = ab_delta
